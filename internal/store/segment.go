package store

// Segmented-journal machinery shared by the journaled engine and the
// instance collection: file naming, directory scanning/cleanup, the
// seal (rotate) and fold (snapshot) primitives, and the replay driver
// that streams "newest snapshot, then tail segments, then the active
// file" while skipping records the snapshot already covers.
//
// File layout inside a journal directory:
//
//	gelee.journal          the active segment — all appends go here
//	journal.NNNNNN.jsonl   sealed segments, immutable, NNNNNN ascending
//	snapshot.NNNNNN.jsonl  the snapshot folding segments 1..NNNNNN
//	snapshot.*.jsonl.tmp   an in-progress fold (ignored and removed)
//
// Sealing renames the active file to the next sealed name and creates
// a fresh active — an O(1) operation under the appender lock, so
// writers never wait on compaction. Folding writes a new snapshot to a
// temp file, fsyncs, renames it into place, and only then deletes the
// segments it covers (and any older snapshot); every crash window
// leaves either the old or the new generation fully intact.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// opSeqMark is the snapshot-internal high-water-mark entry: the first
// line of every snapshot, carrying the journal sequence current when
// the fold began. Without it, a snapshot whose entries all carry
// boundary 0 (a repositories-only store, fully folded) would lose the
// sequence high-water mark and numbering would restart after reopen.
// The replay driver consumes it; callers never see it.
const opSeqMark Op = "seq-hwm"

// sealedName returns the file name of sealed segment n.
func sealedName(n uint64) string { return fmt.Sprintf("journal.%06d.jsonl", n) }

// snapName returns the file name of the snapshot folding segments 1..n.
func snapName(n uint64) string { return fmt.Sprintf("snapshot.%06d.jsonl", n) }

// parseNumbered extracts NNNNNN from prefix+NNNNNN+".jsonl" names.
func parseNumbered(name, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".jsonl")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// segState is the on-disk generation a directory scan found: the
// newest snapshot, the sealed segments it does not cover, and the
// archive files present (reconciled against snapshot refs after
// replay — see reconcileArchives).
type segState struct {
	snapNum     uint64 // newest snapshot number, 0 = none
	snapPath    string // "" when snapNum is 0
	snapBytes   int64
	sealed      []uint64
	sealedBytes int64
	archives    map[uint64]int64 // archive number -> byte length
}

// scanSegments inventories dir and removes stale files: in-progress
// snapshot and archive temp files (a fold that never completed),
// snapshots older than the newest, and sealed segments a snapshot
// already covers (a fold that crashed between rename and delete). The
// survivors are the exact replay set; archive files are inventoried
// but judged only after replay has read the snapshot's refs.
func scanSegments(dir string) (segState, error) {
	st := segState{archives: make(map[uint64]int64)}
	names, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return st, nil
		}
		return st, fmt.Errorf("store: scan journal dir: %w", err)
	}
	var snaps, sealed []uint64
	size := func(de os.DirEntry) int64 {
		if info, err := de.Info(); err == nil {
			return info.Size()
		}
		return 0
	}
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") &&
			(strings.HasPrefix(name, "snapshot.") || strings.HasPrefix(name, "archive.")) {
			os.Remove(filepath.Join(dir, name)) // partial fold: never renamed, never valid
			continue
		}
		if n, ok := parseNumbered(name, "snapshot."); ok {
			snaps = append(snaps, n)
			continue
		}
		if n, ok := parseNumbered(name, "archive."); ok {
			st.archives[n] = size(de)
			continue
		}
		if n, ok := parseNumbered(name, "journal."); ok {
			sealed = append(sealed, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(sealed, func(i, j int) bool { return sealed[i] < sealed[j] })
	if len(snaps) > 0 {
		st.snapNum = snaps[len(snaps)-1]
		st.snapPath = filepath.Join(dir, snapName(st.snapNum))
		if info, err := os.Stat(st.snapPath); err == nil {
			st.snapBytes = info.Size()
		}
		for _, n := range snaps[:len(snaps)-1] {
			os.Remove(filepath.Join(dir, snapName(n)))
		}
	}
	for _, n := range sealed {
		if n <= st.snapNum {
			os.Remove(filepath.Join(dir, sealedName(n))) // folded, delete crashed mid-cleanup
			continue
		}
		st.sealed = append(st.sealed, n)
		if info, err := os.Stat(filepath.Join(dir, sealedName(n))); err == nil {
			st.sealedBytes += info.Size()
		}
	}
	return st, nil
}

// ReplayStats reports what one open streamed: how many entries came
// from the snapshot, how many from unfolded tail segments (sealed +
// active), and how many tail entries were skipped because the snapshot
// already covered them. SnapshotEntries+TailEntries is the bounded
// restart cost the fold buys — it stops growing with total history.
type ReplayStats struct {
	SnapshotEntries int `json:"snapshot_entries"`
	TailEntries     int `json:"tail_entries"`
	SkippedEntries  int `json:"skipped_entries"`
	// Segments is the number of sealed tail segments replayed.
	Segments int `json:"segments"`
	// ArchiveRefs is the number of archive references the snapshot
	// carried — cold history adopted by pointer, not replayed into RAM.
	ArchiveRefs int `json:"archive_refs,omitempty"`
}

// segReplay is the full result of a segmented replay.
type segReplay struct {
	stats   ReplayStats
	lastSeq uint64
	active  fileReplay // the active file's result; good excludes footer + torn tail
	state   segState
	// Torn-tail accounting: files whose invalid suffix was dropped as a
	// crash tail, and the bytes dropped — recoverable, but counted so
	// operators can see it happened (IntegrityStats).
	tornFiles int
	tornBytes int64
}

// replaySegmented streams the directory's journal generation through
// fn: the newest snapshot first, then every uncovered sealed segment
// in order, then the active file. key buckets entries for the fold
// boundary (Entry.Repo for the store journal, Entry.ID for the
// instance journal): a snapshot entry's Seq records the journal
// sequence its bucket's state covers, and tail entries at or below
// that boundary are skipped — they were folded into the snapshot, and
// for non-idempotent buckets (logs, instance records) re-applying them
// would double history.
//
// Torn tails vs. corruption: each file kind gets its own policy (see
// replayPolicy in journal.go). The active file tolerates an invalid
// suffix (truncated and counted), a sealed segment only a torn final
// line when it carries no footer (the legacy crash shape where the
// torn active file was sealed by a later life), and a snapshot nothing
// — snapshots are renamed into place only after a successful fsync, so
// damage there fails the replay rather than silently dropping folded
// state.
func replaySegmented(dir string, key func(Entry) string, fn func(Entry) error) (segReplay, error) {
	var out segReplay
	st, err := scanSegments(dir)
	if err != nil {
		return out, err
	}
	out.state = st
	bounds := make(map[string]uint64)
	note := func(seq uint64) {
		if seq > out.lastSeq {
			out.lastSeq = seq
		}
	}
	if st.snapPath != "" {
		fr, err := replayJournalFile(st.snapPath, replaySnapshot, func(e Entry) error {
			if e.Op == opSeqMark {
				note(e.Seq)
				return nil
			}
			if k := key(e); e.Seq > bounds[k] {
				bounds[k] = e.Seq
			}
			out.stats.SnapshotEntries++
			return fn(e)
		})
		if err != nil {
			return out, err
		}
		note(fr.lastSeq)
	}
	tail := func(e Entry) error {
		if e.Seq <= bounds[key(e)] {
			out.stats.SkippedEntries++
			return nil
		}
		out.stats.TailEntries++
		return fn(e)
	}
	for _, n := range st.sealed {
		fr, err := replayJournalFile(filepath.Join(dir, sealedName(n)), replaySealed, tail)
		if err != nil {
			return out, err
		}
		note(fr.lastSeq)
		out.stats.Segments++
		if fr.torn > 0 {
			out.tornFiles++
			out.tornBytes += fr.torn
		}
	}
	fr, err := replayJournalFile(filepath.Join(dir, journalName), replayActive, tail)
	if err != nil {
		return out, err
	}
	note(fr.lastSeq)
	out.active = fr
	if fr.torn > 0 {
		// fr.size - fr.good can also include a footer left by a seal
		// that crashed before its rename; only genuinely torn bytes are
		// counted (the footer is still truncated away via fr.good).
		out.tornFiles++
		out.tornBytes += fr.torn
	}
	return out, nil
}

// truncateTorn cuts the active file back to its last valid record
// boundary so the next append never welds onto a torn line.
func truncateTorn(dir string, goodBytes int64) error {
	path := filepath.Join(dir, journalName)
	if info, err := os.Stat(path); err == nil && info.Size() > goodBytes {
		if err := os.Truncate(path, goodBytes); err != nil {
			return fmt.Errorf("store: truncate torn journal tail: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates inside it survive
// a crash. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// segFiles tracks a directory's segment generation for a live appender
// and owns the seal and fold primitives. sealedHi is guarded by the
// owner's appender lock (seals happen under it); the remaining fields
// are atomics so stats and folds read them lock-free. Folds must be
// serialized by the owner (one fold at a time).
type segFiles struct {
	dir      string
	framed   bool          // write v1 envelopes and seal with footers
	sealedHi uint64        // highest sealed segment on disk (appender lock)
	snapNum  atomic.Uint64 // segments <= snapNum are folded into the snapshot

	rotations   atomic.Uint64
	folds       atomic.Uint64
	foldErrors  atomic.Uint64
	foldedSegs  atomic.Uint64
	snapEntries atomic.Int64 // entries in the newest snapshot

	// Byte accounting feeding the fold pacing policy (garbage ratio =
	// sealedBytes / (sealedBytes + snapBytes)) and the fold benchmark.
	sealedBytes atomic.Int64  // bytes in unfolded sealed segments
	snapBytes   atomic.Int64  // bytes of the newest snapshot
	foldBytes   atomic.Uint64 // bytes written by folds (snapshots + archives)

	// Archive generation (see archive.go). archiveHi advances only
	// under the owner's fold serialization.
	archiveHi       atomic.Uint64
	archives        atomic.Int64 // referenced archive files on disk
	archiveBytes    atomic.Int64
	archivesWritten atomic.Uint64
	orphanArchives  atomic.Uint64 // unreferenced archives removed on open

	// Integrity accounting (see integrity.go and scrub.go). onCorrupt
	// is set before any traffic (at open) and observes every corruption
	// detection; nil = unobserved.
	tornTails     atomic.Uint64 // files whose torn tails open dropped
	tornTailBytes atomic.Int64
	corrupt       atomic.Uint64 // corrupt files detected (open + scrub)
	quarantined   atomic.Uint64 // files moved aside by quarantine mode
	scrubTicks    atomic.Uint64
	scrubPasses   atomic.Uint64
	scrubFiles    atomic.Uint64
	scrubBytes    atomic.Uint64
	lastScrub     atomic.Int64 // unix seconds of the last completed pass
	onCorrupt     func(CorruptFile)

	// scrubMu guards the scrub cursor and last-error text (one scrub
	// tick at a time); refMu the referenced-archive set the scrubber
	// verifies (written by reconcile at open and Archive during folds).
	scrubMu     sync.Mutex
	scrubCursor scrubPos
	scrubErr    string
	refMu       sync.Mutex
	refs        map[uint64]ArchiveRef
}

// newSegFiles adopts the generation a scan found.
func newSegFiles(dir string, st segState, framed bool) *segFiles {
	sf := &segFiles{dir: dir, framed: framed, refs: make(map[uint64]ArchiveRef)}
	sf.snapNum.Store(st.snapNum)
	sf.sealedHi = st.snapNum
	if n := len(st.sealed); n > 0 {
		sf.sealedHi = st.sealed[n-1]
	}
	sf.sealedBytes.Store(st.sealedBytes)
	sf.snapBytes.Store(st.snapBytes)
	return sf
}

// adoptIntegrity seeds the open-time integrity counters from replay and
// the quarantine pre-verify pass.
func (sf *segFiles) adoptIntegrity(sr segReplay, quarantined, corrupt int, onCorrupt func(CorruptFile)) {
	sf.tornTails.Store(uint64(sr.tornFiles))
	sf.tornTailBytes.Store(sr.tornBytes)
	sf.corrupt.Store(uint64(corrupt))
	sf.quarantined.Store(uint64(quarantined))
	sf.onCorrupt = onCorrupt
}

// adoptArchives seeds the archive counters and the scrubber's ref set
// from a reconcile pass.
func (sf *segFiles) adoptArchives(kept []ArchiveRef, keptBytes int64, hi, removed uint64) {
	sf.archiveHi.Store(hi)
	sf.archives.Store(int64(len(kept)))
	sf.archiveBytes.Store(keptBytes)
	sf.orphanArchives.Store(removed)
	sf.refMu.Lock()
	for _, ref := range kept {
		sf.refs[ref.Archive] = ref
	}
	sf.refMu.Unlock()
}

// sealedCount reports how many sealed segments await folding; callers
// hold the appender lock (or accept a stale read for stats).
func (sf *segFiles) sealedCount() uint64 {
	hi := atomic.LoadUint64(&sf.sealedHi)
	if sn := sf.snapNum.Load(); hi > sn {
		return hi - sn
	}
	return 0
}

// seal finishes the active journal j: flush, fsync, close, rename to
// the next sealed segment name, and open a fresh active file that
// continues the sequence. The caller holds the appender lock; an empty
// active file is a no-op (no zero-length segment churn). Returns the
// journal to append to next (j itself when nothing was sealed).
func (sf *segFiles) seal(j *Journal) (*Journal, error) {
	if j.Size() == 0 {
		return j, nil
	}
	// The footer seals the segment's content (count, seq range, whole-
	// file CRC) so the sealed file verifies in one pass. If anything
	// after this fails, the journal's sticky error stops further appends
	// — and a footer stranded in the active file is harmless anyway: the
	// next open truncates it away with the torn tail.
	if err := j.writeFooter(); err != nil {
		return j, err
	}
	if err := j.Flush(); err != nil {
		return j, err
	}
	if err := j.Sync(); err != nil {
		return j, err
	}
	seq := j.Seq()
	size := j.Size()
	if err := j.Close(); err != nil {
		return j, fmt.Errorf("store: close active segment: %w", err)
	}
	active := filepath.Join(sf.dir, journalName)
	next := atomic.LoadUint64(&sf.sealedHi) + 1
	if err := os.Rename(active, filepath.Join(sf.dir, sealedName(next))); err != nil {
		return j, fmt.Errorf("store: seal segment: %w", err)
	}
	nj, err := openJournal(active, seq, sf.framed)
	if err != nil {
		return j, err
	}
	syncDir(sf.dir)
	atomic.StoreUint64(&sf.sealedHi, next)
	sf.sealedBytes.Add(size)
	sf.rotations.Add(1)
	return nj, nil
}

// fold writes a snapshot covering segments 1..covers and deletes them
// (plus any older snapshot). write receives the open snapshot journal
// and must write every snapshot entry through Journal.writeRaw; the
// file is flushed, fsynced and atomically renamed into place before
// anything is deleted. covers and hwm (the journal's current last
// sequence, preserved across the fold via the opSeqMark header) must
// be sampled under the appender lock before the caller captures its
// live image, so the image is a superset of everything in the folded
// segments; the caller serializes folds. A covers at or below the
// current snapshot is a no-op.
func (sf *segFiles) fold(covers, hwm uint64, write func(*Journal) error) error {
	prev := sf.snapNum.Load()
	if covers <= prev {
		return nil
	}
	final := filepath.Join(sf.dir, snapName(covers))
	tmp := final + ".tmp"
	os.Remove(tmp)
	sj, err := openJournal(tmp, 0, sf.framed)
	if err != nil {
		sf.foldErrors.Add(1)
		return err
	}
	fail := func(err error) error {
		sj.Close()
		os.Remove(tmp)
		sf.foldErrors.Add(1)
		return err
	}
	if err := sj.writeRaw(Entry{Seq: hwm, Op: opSeqMark}); err != nil {
		return fail(err)
	}
	if err := write(sj); err != nil {
		return fail(err)
	}
	entries := sj.Raw() - 1 // exclude the opSeqMark header
	if err := sj.writeFooter(); err != nil {
		return fail(err)
	}
	if err := sj.Flush(); err != nil {
		return fail(err)
	}
	if err := sj.Sync(); err != nil {
		return fail(err)
	}
	if err := sj.Close(); err != nil {
		os.Remove(tmp)
		sf.foldErrors.Add(1)
		return err
	}
	snapSize := int64(0)
	if info, statErr := os.Stat(tmp); statErr == nil {
		snapSize = info.Size()
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		sf.foldErrors.Add(1)
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	syncDir(sf.dir)
	// The new snapshot is durable; everything it covers can go. A crash
	// in this window leaves stale files that the next scan removes.
	sf.snapNum.Store(covers)
	for n := prev + 1; n <= covers; n++ {
		seg := filepath.Join(sf.dir, sealedName(n))
		segSize := int64(0)
		if info, statErr := os.Stat(seg); statErr == nil {
			segSize = info.Size()
		}
		if os.Remove(seg) == nil {
			sf.foldedSegs.Add(1)
			sf.sealedBytes.Add(-segSize)
		}
	}
	if prev > 0 {
		os.Remove(filepath.Join(sf.dir, snapName(prev)))
	}
	sf.folds.Add(1)
	sf.snapEntries.Store(entries)
	sf.snapBytes.Store(snapSize)
	sf.foldBytes.Add(uint64(snapSize))
	return nil
}

// folder is the shared background-compaction loop: seals poke it
// (coalesced to one pending request), it runs the owner's fold until
// stopped. Both the Store and the Instances collection hang theirs off
// the rotation path.
type folder struct {
	ch      chan struct{}
	quit    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
}

func newFolder() *folder {
	return &folder{ch: make(chan struct{}, 1), quit: make(chan struct{})}
}

// start launches the loop (once; later calls are no-ops). fold errors
// are the owner's to count — typically via segFiles.foldErrors — and
// are retried on the next poke.
func (f *folder) start(fold func()) {
	if !f.started.CompareAndSwap(false, true) {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			select {
			case <-f.ch:
				fold()
			case <-f.quit:
				return
			}
		}
	}()
}

// poke requests a fold; free to call from any goroutine, never blocks.
func (f *folder) poke() {
	select {
	case f.ch <- struct{}{}:
	default:
	}
}

// running reports whether the loop was started (and not stopped) —
// the owner's gate for scheduling folds at all.
func (f *folder) running() bool { return f.started.Load() }

// stop terminates the loop and waits for an in-flight fold to finish.
// Idempotent via the started flag; safe when start never ran.
func (f *folder) stop() {
	if !f.started.CompareAndSwap(true, false) {
		return
	}
	close(f.quit)
	f.wg.Wait()
}

// statsInto copies the rotation/fold counters into an EngineStats.
func (sf *segFiles) statsInto(st *EngineStats, replay ReplayStats) {
	st.SealedSegments = int(sf.sealedCount())
	st.Rotations = sf.rotations.Load()
	st.Folds = sf.folds.Load()
	st.FoldErrors = sf.foldErrors.Load()
	st.FoldedSegments = sf.foldedSegs.Load()
	st.SnapshotEntries = sf.snapEntries.Load()
	st.SealedBytes = sf.sealedBytes.Load()
	st.SnapshotBytes = sf.snapBytes.Load()
	st.FoldBytesWritten = sf.foldBytes.Load()
	st.Archives = sf.archives.Load()
	st.ArchiveBytes = sf.archiveBytes.Load()
	st.ArchivesWritten = sf.archivesWritten.Load()
	st.OrphanArchives = sf.orphanArchives.Load()
	st.Integrity = IntegrityStats{
		Framing:          sf.framed,
		TornTails:        sf.tornTails.Load(),
		TornTailBytes:    sf.tornTailBytes.Load(),
		CorruptFiles:     sf.corrupt.Load(),
		QuarantinedFiles: sf.quarantined.Load(),
		ScrubTicks:       sf.scrubTicks.Load(),
		ScrubPasses:      sf.scrubPasses.Load(),
		ScrubFiles:       sf.scrubFiles.Load(),
		ScrubBytes:       sf.scrubBytes.Load(),
		LastScrubUnix:    sf.lastScrub.Load(),
	}
	sf.scrubMu.Lock()
	st.Integrity.LastError = sf.scrubErr
	sf.scrubMu.Unlock()
	st.Replay = replay
}
