package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
)

// instancesRepo is the Entry.Repo name framing instance records.
const instancesRepo = "instances"

// InstancesOptions tune the instance collection's journal.
type InstancesOptions struct {
	// Sync upgrades durability from write(2) per append to one fsync
	// per combined flush.
	Sync bool
	// SegmentMaxBytes seals the active segment once it grows past this
	// size (0 = no automatic rotation). Sealed segments are folded into
	// per-instance snapshot records once a snapshot source is wired
	// (SetSnapshotSource), keeping restart replay bounded.
	SegmentMaxBytes int64
	// SnapshotEvery folds once this many sealed segments accumulate
	// (0 = every rotation).
	SnapshotEvery int
	// OnAppendResult, when set, observes the outcome of every Append
	// (nil error = durably acknowledged) — the health signal the
	// resilience layer watches. Called on the write path; must be O(1)
	// and must not call back into the collection.
	OnAppendResult func(error)
	// Integrity tunes corruption detection: record framing, quarantine
	// mode, the background scrubber (see IntegrityOptions).
	Integrity IntegrityOptions
}

// Instances is the lifecycle-instance collection of the data tier: an
// append-only feed of opaque, typed mutation records keyed by instance
// id, framed as journal entries in the same JSONL format (and with the
// same segment rotation, snapshot folding and torn-tail recovery) as
// every other journal. The runtime owns the record schema
// (runtime.JournalRecord, including the RecSnapshot records folding
// emits); this type owns the entry framing/codec, the replay
// streaming, the write path and the segment lifecycle.
//
// The collection runs on its own journal directory — not as a part of
// the definitions Store — because instance records are emitted while
// the mutated instance's lock is held; routing them through
// Store.commit would order that lock against store-wide machinery it
// must stay independent of. And unlike repositories, instance history
// is replayed streaming and then discarded — there is no in-memory
// copy to rewrite a compacted journal from, which is why folding asks
// the runtime for per-instance snapshot records instead.
//
// # Folding
//
// When the active segment outgrows SegmentMaxBytes it is sealed (an
// O(1) rename/create under the appender mutex — writers never wait on
// compaction) and the background folder asks the snapshot source —
// wired by the facade to runtime.EmitSnapshots — for one encoded
// snapshot record per live instance. Each is written to the new
// snapshot file with a fold boundary: the journal sequence current at
// emit time, sampled while the instance's lock is held, so the record
// provably reflects every journaled mutation of that instance at or
// below the boundary and none above it. Replay streams the snapshot
// first, then the unfolded tail segments, skipping tail records at or
// below their instance's boundary — the exact set the snapshot
// already covers. Restart cost is therefore O(live instances + tail),
// no longer O(every record ever written).
//
// The default disk write path (OpenInstances) is a flush-combining
// appender rather than the group-commit Engine: writers encode into
// the shared buffered writer under a mutex, yield once so concurrent
// appenders can join, and the first writer back claims one flush (+
// one fsync in durable mode) covering everyone — the group-commit
// batching effect without the channel round trips, which on small
// records cost more than the write itself. The Engine's per-entry
// onCommit ordering is not needed here because the runtime applies
// its in-memory mutation itself, under the instance lock, before the
// append. NewInstances still accepts any Engine for the in-memory
// mode and future multi-backend deployments.
//
// Lifecycle: construct, Replay (or ReplayParallel) exactly once —
// which opens the journal for appending — then Append freely, Close
// once. Append returns only once the record is durable at the
// configured level — write(2)-deep by default (survives a killed
// process), fsync-deep with Sync — which is the write-through contract
// the runtime's Journal sink relies on.
type Instances struct {
	engine Engine // generic mode; nil when running the journal fast path

	// Journal fast path. mu guards j, flushedSeq and closed; opened is
	// atomic so Stats can read it without the lock.
	dir    string
	opts   InstancesOptions
	mu     sync.Mutex
	j      *Journal
	sf     *segFiles
	opened atomic.Bool
	closed bool

	// Folding. foldMu serializes folds; source is set once, before the
	// collection sees concurrent traffic (SetSnapshotSource), which is
	// also when the background folder starts.
	foldMu sync.Mutex
	source func(emit func(id string, data []byte) error) error
	folds  *folder

	// stopScrub halts the background scrubber (nil when ScrubInterval
	// is zero); set by ReplayParallel, called by Close.
	stopScrub func()

	flushedSeq  uint64
	appends     atomic.Uint64
	flushes     atomic.Uint64
	syncs       atomic.Uint64
	maxBatch    atomic.Int64
	replayed    atomic.Int64
	replayStats ReplayStats

	// waiters gauges appenders currently inside Append — the
	// flush-combining path has no queue channel, so in-flight count is
	// its saturation signal for admission control.
	waiters atomic.Int64
}

// NewInstances wraps a generic Engine as the instance collection — the
// in-memory mode and the seam for alternative backends.
func NewInstances(engine Engine) *Instances {
	return &Instances{engine: engine}
}

// OpenInstances builds the instance collection on its own journal
// directory under dir (created if missing), using the flush-combining
// write path with segment rotation per opts.
func OpenInstances(dir string, opts InstancesOptions) (*Instances, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create instances dir: %w", err)
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 1
	}
	return &Instances{
		dir:   dir,
		opts:  opts,
		folds: newFolder(),
	}, nil
}

// Replay streams every previously committed record through fn in
// commit order — per-instance, that is mutation order, with the
// instance's snapshot record (if a fold ran) first and only the
// uncovered tail records after it. Like Engine.Replay it must be
// called exactly once, before any Append, truncates a torn active
// tail so the next append starts on a record boundary, and treats a
// missing or empty directory as empty.
func (c *Instances) Replay(fn func(id string, data []byte) error) error {
	return c.ReplayParallel(1, fn)
}

// ReplayParallel is Replay sharded across workers goroutines by
// instance id: records of different instances are independent, so
// each worker applies its ids' records in order while the reader
// streams ahead. fn must be safe for concurrent calls on different
// ids (runtime.ApplyJournal is); per-id call order is exactly the
// sequential replay order. workers <= 1 degrades to the plain
// sequential replay.
func (c *Instances) ReplayParallel(workers int, fn func(id string, data []byte) error) error {
	apply := func(e Entry) error {
		if e.Op != OpAppend {
			return fmt.Errorf("store: %s: replay unknown op %q", instancesRepo, e.Op)
		}
		c.replayed.Add(1)
		return fn(e.ID, e.Data)
	}
	if c.engine != nil {
		return c.engine.Replay(apply)
	}

	quarantined, corrupt := 0, 0
	if c.opts.Integrity.Quarantine {
		var err error
		quarantined, corrupt, err = preVerify(c.dir, c.opts.Integrity.OnCorrupt)
		if err != nil {
			return err
		}
	}
	var sr segReplay
	var err error
	if workers <= 1 {
		sr, err = replaySegmented(c.dir, func(e Entry) string { return e.ID }, apply)
	} else {
		sr, err = c.replayFanOut(workers, apply)
	}
	if err != nil {
		return err
	}
	if err := truncateTorn(c.dir, sr.active.good); err != nil {
		return err
	}
	framed := !c.opts.Integrity.DisableFraming
	j, err := openJournal(filepath.Join(c.dir, journalName), sr.lastSeq, framed)
	if err != nil {
		return err
	}
	j.adoptReplay(sr.active)
	c.mu.Lock()
	c.j = j
	c.sf = newSegFiles(c.dir, sr.state, framed)
	c.sf.adoptIntegrity(sr, quarantined, corrupt, c.opts.Integrity.OnCorrupt)
	c.flushedSeq = sr.lastSeq
	c.replayStats = sr.stats
	c.mu.Unlock()
	c.opened.Store(true)
	if iv := c.opts.Integrity.ScrubInterval; iv > 0 {
		c.stopScrub = scrubLoop(iv, c.opts.Integrity.ScrubBytesPerTick, c.Scrub)
	}
	return nil
}

// Scrub runs one bounded background-verification tick over the
// collection's sealed segments and snapshot (see scrub.go). Zeros for
// the generic-engine mode without durable files.
func (c *Instances) Scrub(maxBytes int64) ScrubResult {
	if c.engine != nil {
		return c.engine.Scrub(maxBytes)
	}
	c.mu.Lock()
	sf, closed := c.sf, c.closed
	c.mu.Unlock()
	if sf == nil || closed {
		return ScrubResult{}
	}
	return sf.scrubTick(maxBytes)
}

// replayFanOut drives the segmented replay with per-id-sharded worker
// goroutines (the shared fanOut, also behind Store.LoadParallel).
func (c *Instances) replayFanOut(workers int, apply func(Entry) error) (segReplay, error) {
	fo := newFanOut(workers, apply)
	sr, readErr := replaySegmented(c.dir, func(e Entry) string { return e.ID }, func(e Entry) error {
		return fo.dispatch(e.ID, e)
	})
	finishErr := fo.finish()
	if readErr != nil {
		return sr, readErr
	}
	return sr, finishErr
}

// Replayed reports how many records the startup replay streamed
// (snapshot records plus unfolded tail records — skipped folded
// duplicates are not counted).
func (c *Instances) Replayed() int64 { return c.replayed.Load() }

// ReplayStats reports what the startup replay streamed per source.
func (c *Instances) ReplayStats() ReplayStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replayStats
}

// SetSnapshotSource wires the per-instance snapshot provider folding
// needs — the facade passes runtime.EmitSnapshots — and starts the
// background folder. The source must call emit once per live instance
// *while holding that instance's mutation lock*: the collection
// samples the fold boundary inside emit, and the lock is what
// guarantees the emitted state reflects exactly the instance's records
// at or below it. Call once, after Replay; folding is disabled until
// a source exists (segments still rotate and accumulate).
func (c *Instances) SetSnapshotSource(source func(emit func(id string, data []byte) error) error) {
	if c.engine != nil || source == nil {
		return
	}
	c.foldMu.Lock()
	c.source = source
	c.foldMu.Unlock()
	// Fold errors are counted in FoldErrors and retried on the next seal.
	c.folds.start(func() { c.Fold() })
}

// Append commits one mutation record for the given instance and
// returns once it is durable. On the journal fast path the record is
// written under the mutex, then — after one scheduler yield that lets
// concurrent appenders add theirs — the first appender back claims a
// single flush (+fsync when durable) covering every record written so
// far; later claimants see their sequence already flushed and return
// without a syscall. A flush that leaves the active segment past
// SegmentMaxBytes seals it in place — an O(1) rename/create — and
// pokes the folder.
func (c *Instances) Append(id string, data []byte) error {
	c.waiters.Add(1)
	err := c.append(id, data)
	c.waiters.Add(-1)
	if c.opts.OnAppendResult != nil {
		c.opts.OnAppendResult(err)
	}
	return err
}

// Waiters is the number of appenders currently inside Append — the
// collection's queue-depth analogue.
func (c *Instances) Waiters() int { return int(c.waiters.Load()) }

func (c *Instances) append(id string, data []byte) error {
	if id == "" {
		return fmt.Errorf("store: %s: empty instance id", instancesRepo)
	}
	if c.engine != nil {
		_, err := c.engine.Append(Entry{Repo: instancesRepo, Op: OpAppend, ID: id, Data: data}, nil)
		return err
	}
	c.mu.Lock()
	if c.closed || c.j == nil {
		c.mu.Unlock()
		if !c.opened.Load() {
			return fmt.Errorf("store: %s: append before Replay", instancesRepo)
		}
		return ErrClosed
	}
	seq, err := c.j.writeEntry(Entry{Repo: instancesRepo, Op: OpAppend, ID: id, Data: data})
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.appends.Add(1)
	runtime.Gosched() // let concurrent appenders join this flush
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flushedSeq >= seq {
		// A concurrent appender's flush (or Close's final flush)
		// covered us.
		return nil
	}
	if c.closed || c.j == nil {
		return ErrClosed
	}
	if err := c.j.Flush(); err != nil {
		return err
	}
	if c.opts.Sync {
		if err := c.j.Sync(); err != nil {
			return err
		}
		c.syncs.Add(1)
	}
	if batch := int64(c.j.Seq() - c.flushedSeq); batch > c.maxBatch.Load() {
		c.maxBatch.Store(batch)
	}
	c.flushedSeq = c.j.Seq()
	c.flushes.Add(1)
	c.maybeRotateLocked()
	return nil
}

// maybeRotateLocked seals the active segment once it outgrew the
// configured bound; callers hold c.mu. Everything written so far is
// flushed and fsynced by the seal, so flushedSeq advances to the full
// sequence — in-flight appenders waiting on this flush are covered.
func (c *Instances) maybeRotateLocked() {
	if c.opts.SegmentMaxBytes <= 0 || c.j.Size() < c.opts.SegmentMaxBytes {
		return
	}
	nj, err := c.sf.seal(c.j)
	c.j = nj
	if err != nil {
		return
	}
	c.flushedSeq = c.j.Seq()
	if c.folds.running() && c.sf.sealedCount() >= uint64(c.opts.SnapshotEvery) {
		c.folds.poke()
	}
}

// Seal rotates the active segment now (no-op when empty) — the manual
// hook benchmarks and Compact use.
func (c *Instances) Seal() error {
	if c.engine != nil {
		return c.engine.Seal()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.j == nil {
		return ErrClosed
	}
	nj, err := c.sf.seal(c.j)
	c.j = nj
	if err == nil {
		c.flushedSeq = c.j.Seq()
	}
	return err
}

// Fold compacts every segment sealed before the call: the snapshot
// source emits one record per live instance, each stamped with its
// fold boundary, into a new snapshot file; the folded segments are
// then deleted. Appends proceed concurrently — the boundary sampling
// under each instance's lock is what keeps the overlap exact. Returns
// an error when no snapshot source is wired.
func (c *Instances) Fold() error {
	if c.engine != nil {
		return c.engine.Fold(nil)
	}
	c.foldMu.Lock()
	defer c.foldMu.Unlock()
	if c.source == nil {
		return fmt.Errorf("store: %s: fold without a snapshot source", instancesRepo)
	}
	c.mu.Lock()
	if c.closed || c.j == nil {
		c.mu.Unlock()
		return ErrClosed
	}
	covers := c.sf.sealedHi
	hwm := c.j.Seq()
	sf := c.sf
	c.mu.Unlock()
	return sf.fold(covers, hwm, func(sj *Journal) error {
		return c.source(func(id string, data []byte) error {
			if id == "" {
				return fmt.Errorf("store: %s: snapshot record with empty id", instancesRepo)
			}
			// The fold boundary: the journal sequence current while the
			// instance's lock is held (the source's contract). Records
			// for this id at or below it are exactly the ones the
			// emitted state reflects.
			c.mu.Lock()
			if c.closed || c.j == nil {
				c.mu.Unlock()
				return ErrClosed
			}
			boundary := c.j.Seq()
			c.mu.Unlock()
			return sj.writeRaw(Entry{Seq: boundary, Repo: instancesRepo, Op: OpAppend, ID: id, Data: data})
		})
	})
}

// Compact is Seal + Fold: rotate the active segment and fold all
// history into the snapshot. Writers are never excluded.
func (c *Instances) Compact() error {
	if c.engine != nil {
		return nil
	}
	if err := c.Seal(); err != nil {
		return err
	}
	return c.Fold()
}

// Stats reports the collection's health in the engine-stats shape the
// admin endpoint already speaks: appends, combined flushes as batches,
// fsyncs, the largest combined batch, and the segment rotation / fold
// / replay counters.
func (c *Instances) Stats() EngineStats {
	if c.engine != nil {
		return c.engine.Stats()
	}
	st := EngineStats{
		Engine:   "instances-journal",
		State:    StateRunning,
		Appends:  c.appends.Load(),
		Batches:  c.flushes.Load(),
		Syncs:    c.syncs.Load(),
		MaxBatch: int(c.maxBatch.Load()),
	}
	if !c.opened.Load() {
		st.State = StateClosed
	}
	c.mu.Lock()
	if c.j != nil {
		st.LastSeq = c.j.Seq()
	}
	if c.closed {
		st.State = StateClosed
	}
	sf, replay := c.sf, c.replayStats
	c.mu.Unlock()
	if sf != nil {
		sf.statsInto(&st, replay)
	}
	return st
}

// Close flushes and closes the journal. Every Append acknowledged
// before Close stays durable; Close is idempotent.
func (c *Instances) Close() error {
	if c.engine != nil {
		return c.engine.Close()
	}
	if c.stopScrub != nil {
		c.stopScrub()
	}
	c.folds.stop()
	// A straggler fold could still be writing; let it finish before the
	// appender goes away.
	c.foldMu.Lock()
	defer c.foldMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.j == nil {
		c.closed = true
		return nil
	}
	c.closed = true
	seq := c.j.Seq()
	err := c.j.Flush()
	if err == nil && c.opts.Sync {
		err = c.j.Sync()
	}
	if closeErr := c.j.Close(); err == nil {
		err = closeErr
	}
	if err == nil {
		c.flushedSeq = seq // in-flight appenders' records made it out
	}
	c.j = nil
	return err
}
