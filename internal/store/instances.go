package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
)

// instancesRepo is the Entry.Repo name framing instance records.
const instancesRepo = "instances"

// Instances is the lifecycle-instance collection of the data tier: an
// append-only feed of opaque, typed mutation records keyed by instance
// id, framed as journal entries in the same JSONL format (and with the
// same torn-tail recovery) as every other journal. The runtime owns
// the record schema (runtime.JournalRecord); this type owns the entry
// framing/codec, the replay streaming, and the write path.
//
// The collection runs on its own journal file — not as a part of the
// definitions Store. Two reasons. First, instance records are emitted
// while the mutated instance's lock is held; routing them through
// Store.commit would order that lock against the store-wide commit
// lock that Compact takes exclusively, a lock-order inversion waiting
// to deadlock. Second, instance history is replayed streaming and then
// discarded — unlike repositories and logs it keeps no in-memory
// copy, so stop-the-world Compact has nothing to rewrite it from.
// Compacting the instance journal is a segment-rotation problem and
// joins that roadmap item; until then the journal grows append-only,
// like the execution log already does.
//
// The default disk write path (OpenInstances) is a flush-combining
// appender rather than the group-commit Engine: writers encode into
// the shared buffered writer under a mutex, yield once so concurrent
// appenders can join, and the first writer back claims one flush (+
// one fsync in durable mode) covering everyone — the group-commit
// batching effect without the channel round trips, which on small
// records cost more than the write itself. The Engine's per-entry
// onCommit ordering is not needed here because the runtime applies
// its in-memory mutation itself, under the instance lock, before the
// append. NewInstances still accepts any Engine for the in-memory
// mode and future multi-backend deployments.
//
// Lifecycle: construct, Replay exactly once (which opens the journal
// for appending), Append freely, Close once. Append returns only once
// the record is durable at the configured level — write(2)-deep by
// default (survives a killed process), fsync-deep with sync — which is
// the write-through contract the runtime's Journal sink relies on.
type Instances struct {
	engine Engine // generic mode; nil when running the journal fast path

	// Journal fast path. mu guards j, flushedSeq and closed; opened is
	// atomic so Stats can read it without the lock.
	path   string
	sync   bool
	mu     sync.Mutex
	j      *Journal
	opened atomic.Bool
	closed bool

	flushedSeq uint64
	appends    atomic.Uint64
	flushes    atomic.Uint64
	syncs      atomic.Uint64
	maxBatch   atomic.Int64
	replayed   atomic.Int64
}

// NewInstances wraps a generic Engine as the instance collection — the
// in-memory mode and the seam for alternative backends.
func NewInstances(engine Engine) *Instances {
	return &Instances{engine: engine}
}

// OpenInstances builds the instance collection on its own journal file
// under dir (created if missing), using the flush-combining write
// path. sync upgrades durability from write(2) per append to one
// fsync per combined flush.
func OpenInstances(dir string, sync bool) (*Instances, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create instances dir: %w", err)
	}
	return &Instances{path: filepath.Join(dir, journalName), sync: sync}, nil
}

// Replay streams every previously committed record through fn in
// commit order — per-instance, that is mutation order — then opens the
// collection for appending. Like Engine.Replay it must be called
// exactly once, before any Append, truncates a torn tail so the next
// append starts on a record boundary, and treats a missing file as
// empty.
func (c *Instances) Replay(fn func(id string, data []byte) error) error {
	apply := func(e Entry) error {
		if e.Op != OpAppend {
			return fmt.Errorf("store: %s: replay unknown op %q", instancesRepo, e.Op)
		}
		c.replayed.Add(1)
		return fn(e.ID, e.Data)
	}
	if c.engine != nil {
		return c.engine.Replay(apply)
	}
	_, lastSeq, goodBytes, err := ReplayJournal(c.path, apply)
	if err != nil {
		return err
	}
	if info, statErr := os.Stat(c.path); statErr == nil && info.Size() > goodBytes {
		if err := os.Truncate(c.path, goodBytes); err != nil {
			return fmt.Errorf("store: truncate torn instance journal tail: %w", err)
		}
	}
	j, err := OpenJournal(c.path, lastSeq)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.j = j
	c.flushedSeq = lastSeq
	c.mu.Unlock()
	c.opened.Store(true)
	return nil
}

// Replayed reports how many records the startup replay streamed.
func (c *Instances) Replayed() int64 { return c.replayed.Load() }

// Append commits one mutation record for the given instance and
// returns once it is durable. On the journal fast path the record is
// written under the mutex, then — after one scheduler yield that lets
// concurrent appenders add theirs — the first appender back claims a
// single flush (+fsync when durable) covering every record written so
// far; later claimants see their sequence already flushed and return
// without a syscall.
func (c *Instances) Append(id string, data []byte) error {
	if id == "" {
		return fmt.Errorf("store: %s: empty instance id", instancesRepo)
	}
	if c.engine != nil {
		_, err := c.engine.Append(Entry{Repo: instancesRepo, Op: OpAppend, ID: id, Data: data}, nil)
		return err
	}
	c.mu.Lock()
	if c.closed || c.j == nil {
		c.mu.Unlock()
		if !c.opened.Load() {
			return fmt.Errorf("store: %s: append before Replay", instancesRepo)
		}
		return ErrClosed
	}
	seq, err := c.j.writeEntry(Entry{Repo: instancesRepo, Op: OpAppend, ID: id, Data: data})
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.appends.Add(1)
	runtime.Gosched() // let concurrent appenders join this flush
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flushedSeq >= seq {
		// A concurrent appender's flush (or Close's final flush)
		// covered us.
		return nil
	}
	if c.closed || c.j == nil {
		return ErrClosed
	}
	if err := c.j.Flush(); err != nil {
		return err
	}
	if c.sync {
		if err := c.j.Sync(); err != nil {
			return err
		}
		c.syncs.Add(1)
	}
	if batch := int64(c.j.Seq() - c.flushedSeq); batch > c.maxBatch.Load() {
		c.maxBatch.Store(batch)
	}
	c.flushedSeq = c.j.Seq()
	c.flushes.Add(1)
	return nil
}

// Stats reports the collection's health in the engine-stats shape the
// admin endpoint already speaks: appends, combined flushes as batches,
// fsyncs, and the largest combined batch.
func (c *Instances) Stats() EngineStats {
	if c.engine != nil {
		return c.engine.Stats()
	}
	st := EngineStats{
		Engine:   "instances-journal",
		State:    StateRunning,
		Appends:  c.appends.Load(),
		Batches:  c.flushes.Load(),
		Syncs:    c.syncs.Load(),
		MaxBatch: int(c.maxBatch.Load()),
	}
	if !c.opened.Load() {
		st.State = StateClosed
	}
	c.mu.Lock()
	if c.j != nil {
		st.LastSeq = c.j.Seq()
	}
	if c.closed {
		st.State = StateClosed
	}
	c.mu.Unlock()
	return st
}

// Close flushes and closes the journal. Every Append acknowledged
// before Close stays durable; Close is idempotent.
func (c *Instances) Close() error {
	if c.engine != nil {
		return c.engine.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.j == nil {
		c.closed = true
		return nil
	}
	c.closed = true
	seq := c.j.Seq()
	err := c.j.Flush()
	if err == nil && c.sync {
		err = c.j.Sync()
	}
	if closeErr := c.j.Close(); err == nil {
		err = closeErr
	}
	if err == nil {
		c.flushedSeq = seq // in-flight appenders' records made it out
	}
	c.j = nil
	return err
}
