package store

// The background scrubber: bounded re-verification of durable files
// while the engine serves. Each tick walks the generation in a fixed
// order — sealed segments by number, then the newest snapshot, then
// archives by number — resuming at a cursor and stopping once the byte
// budget is spent; reaching the end completes a pass and resets the
// cursor. The active file is never scrubbed: its tail is legitimately
// in flux (buffered writes can land mid-line), and every line in it is
// re-verified at the next open anyway.
//
// Scrubbing is detection, not repair: a failed file is counted, stamped
// into IntegrityStats.LastError and reported through onCorrupt (which
// feeds the journal-corruption alert), but never moved while the engine
// may be serving reads from it — quarantine is an open-time decision,
// repair an offline one (fsck).

import (
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// scrubLoop runs tick(maxBytes) every interval from its own goroutine
// and returns an idempotent stop function that waits for the loop to
// exit. The shared driver behind Store's and Instances' background
// scrubbers.
func scrubLoop(interval time.Duration, maxBytes int64, tick func(int64) ScrubResult) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				tick(maxBytes)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// ScrubResult reports what one scrub tick did.
type ScrubResult struct {
	// Files and Bytes count what this tick verified.
	Files int   `json:"files"`
	Bytes int64 `json:"bytes"`
	// Corrupt counts files that failed verification this tick.
	Corrupt int `json:"corrupt"`
	// PassCompleted reports that the tick reached the end of the
	// generation (the cursor reset; the next tick starts over).
	PassCompleted bool `json:"pass_completed"`
}

// scrubPos orders the scrub walk: sealed segments (kind 0), the
// snapshot (kind 1), archives (kind 2), each by file number. The zero
// value means "start of the pass" — real candidates always have a
// nonzero number.
type scrubPos struct {
	kind int
	num  uint64
}

func (p scrubPos) less(q scrubPos) bool {
	return p.kind < q.kind || (p.kind == q.kind && p.num < q.num)
}

// scrubCandidates lists the currently verifiable files in walk order
// from the live generation state — no directory scan, so a tick races
// folds only through the filesystem (a file deleted underfoot verifies
// as empty and is skipped).
func (sf *segFiles) scrubCandidates() []scrubPos {
	var out []scrubPos
	snap := sf.snapNum.Load()
	hi := atomic.LoadUint64(&sf.sealedHi)
	for n := snap + 1; n <= hi; n++ {
		out = append(out, scrubPos{0, n})
	}
	if snap > 0 {
		out = append(out, scrubPos{1, snap})
	}
	sf.refMu.Lock()
	nums := make([]uint64, 0, len(sf.refs))
	for n := range sf.refs {
		nums = append(nums, n)
	}
	sf.refMu.Unlock()
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		out = append(out, scrubPos{2, n})
	}
	return out
}

// scrubVerify checks one candidate and returns the bytes it read. A
// file that vanished underfoot (folded away between listing and open)
// verifies as zero bytes, nil error — except a referenced archive,
// whose absence is real corruption (references are durable).
func (sf *segFiles) scrubVerify(p scrubPos) (string, int64, error) {
	switch p.kind {
	case 0:
		path := filepath.Join(sf.dir, sealedName(p.num))
		fr, err := replayJournalFile(path, replaySealed, nil)
		return path, fr.size, err
	case 1:
		path := filepath.Join(sf.dir, snapName(p.num))
		fr, err := replayJournalFile(path, replaySnapshot, nil)
		return path, fr.size, err
	default:
		path := filepath.Join(sf.dir, archiveName(p.num))
		sf.refMu.Lock()
		ref, ok := sf.refs[p.num]
		sf.refMu.Unlock()
		if !ok {
			return path, 0, nil
		}
		return path, ref.Bytes, readArchive(sf.dir, ref, func(Entry) error { return nil })
	}
}

// scrubTick runs one bounded verification tick (at most maxBytes of
// IO, 0 = DefaultScrubBytesPerTick). Ticks are serialized by scrubMu;
// callers may invoke it from a ticker loop or on demand.
func (sf *segFiles) scrubTick(maxBytes int64) ScrubResult {
	sf.scrubMu.Lock()
	defer sf.scrubMu.Unlock()
	if maxBytes <= 0 {
		maxBytes = DefaultScrubBytesPerTick
	}
	var res ScrubResult
	start := scrubPos{}
	cursor := sf.scrubCursor
	budget := maxBytes
	for _, c := range sf.scrubCandidates() {
		if cursor != start && !cursor.less(c) {
			continue // verified earlier in this pass
		}
		path, size, err := sf.scrubVerify(c)
		res.Files++
		res.Bytes += size
		sf.scrubFiles.Add(1)
		sf.scrubBytes.Add(uint64(size))
		if err != nil {
			res.Corrupt++
			sf.corrupt.Add(1)
			sf.scrubErr = err.Error()
			if sf.onCorrupt != nil {
				sf.onCorrupt(CorruptFile{Path: path, Detail: err.Error(), Source: "scrub"})
			}
		}
		sf.scrubCursor = c
		cursor = c
		budget -= size
		if budget <= 0 {
			sf.scrubTicks.Add(1)
			return res
		}
	}
	sf.scrubCursor = start
	sf.scrubPasses.Add(1)
	sf.lastScrub.Store(time.Now().Unix())
	sf.scrubTicks.Add(1)
	res.PassCompleted = true
	return res
}
