package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

type doc struct {
	Title string `json:"title"`
	Rev   int    `json:"rev"`
}

func openStore(t *testing.T, dir string) (*Store, *Repo[doc]) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	return s, repo
}

func TestRepoPutGetDelete(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[doc](s, "docs")
	if err := repo.Put("d1", doc{Title: "Design", Rev: 1}); err != nil {
		t.Fatal(err)
	}
	got, ok := repo.Get("d1")
	if !ok || got.Title != "Design" {
		t.Fatalf("Get = %+v, %t", got, ok)
	}
	if err := repo.Put("d1", doc{Title: "Design", Rev: 2}); err != nil {
		t.Fatal(err)
	}
	got, _ = repo.Get("d1")
	if got.Rev != 2 {
		t.Fatalf("overwrite lost: %+v", got)
	}
	if err := repo.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := repo.Get("d1"); ok {
		t.Fatal("deleted value still present")
	}
	if err := repo.Delete("never-existed"); err != nil {
		t.Fatalf("deleting missing id should be a no-op: %v", err)
	}
}

func TestRepoRejectsEmptyID(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[doc](s, "docs")
	if err := repo.Put("", doc{}); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestRepoListSorted(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[doc](s, "docs")
	for _, id := range []string{"c", "a", "b"} {
		if err := repo.Put(id, doc{Title: id}); err != nil {
			t.Fatal(err)
		}
	}
	ids := repo.IDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Fatalf("IDs = %v", ids)
	}
	list := repo.List()
	if len(list) != 3 || list[0].Title != "a" {
		t.Fatalf("List = %v", list)
	}
	if repo.Len() != 3 {
		t.Fatalf("Len = %d", repo.Len())
	}
}

func TestDuplicateRepoNameFails(t *testing.T) {
	s := NewMemory()
	MustRepo[doc](s, "docs")
	if _, err := NewRepo[doc](s, "docs"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, repo := openStore(t, dir)
	if err := repo.Put("d1", doc{Title: "one", Rev: 1}); err != nil {
		t.Fatal(err)
	}
	if err := repo.Put("d2", doc{Title: "two", Rev: 1}); err != nil {
		t.Fatal(err)
	}
	if err := repo.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, repo2 := openStore(t, dir)
	if _, ok := repo2.Get("d1"); ok {
		t.Fatal("deleted doc resurrected on replay")
	}
	got, ok := repo2.Get("d2")
	if !ok || got.Title != "two" {
		t.Fatalf("replayed doc = %+v, %t", got, ok)
	}
}

func TestTornFinalLineRecovered(t *testing.T) {
	dir := t.TempDir()
	s, repo := openStore(t, dir)
	if err := repo.Put("d1", doc{Title: "keep"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage with no trailing newline.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"repo":"docs","op":"put","id":"d2","data":{"ti`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, repo2 := openStore(t, dir)
	if _, ok := repo2.Get("d1"); !ok {
		t.Fatal("intact record lost after torn-write recovery")
	}
	if _, ok := repo2.Get("d2"); ok {
		t.Fatal("torn record applied")
	}
	// The store must be writable again after recovery.
	if err := repo2.Put("d3", doc{Title: "after"}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestMidFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	content := `{"seq":1,"repo":"docs","op":"put","id":"a","data":{"title":"x","rev":1}}
this is not json
{"seq":2,"repo":"docs","op":"put","id":"b","data":{"title":"y","rev":1}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	MustRepo[doc](s, "docs")
	err = s.Load()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load = %v, want ErrCorrupt", err)
	}
}

func TestReplaySkipsUnknownRepos(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	content := `{"seq":1,"repo":"from-the-future","op":"put","id":"a","data":{}}
{"seq":2,"repo":"docs","op":"put","id":"b","data":{"title":"y","rev":1}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, repo := openStore(t, dir)
	if _, ok := repo.Get("b"); !ok {
		t.Fatal("known repo entry lost while skipping unknown repo")
	}
}

func TestCompactShrinksJournal(t *testing.T) {
	dir := t.TempDir()
	s, repo := openStore(t, dir)
	for i := 0; i < 50; i++ {
		if err := repo.Put("d1", doc{Title: "spam", Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, journalName)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	// State must survive compaction and the store must stay writable.
	got, ok := repo.Get("d1")
	if !ok || got.Rev != 49 {
		t.Fatalf("post-compact value = %+v, %t", got, ok)
	}
	if err := repo.Put("d2", doc{Title: "new"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// And the compacted journal must replay.
	_, repo2 := openStore(t, dir)
	if got, _ := repo2.Get("d1"); got.Rev != 49 {
		t.Fatalf("replay after compact = %+v", got)
	}
	if _, ok := repo2.Get("d2"); !ok {
		t.Fatal("post-compact write lost")
	}
}

func TestMutationBeforeLoadRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[doc](s, "docs")
	if err := repo.Put("d1", doc{}); err == nil || !strings.Contains(err.Error(), "before Load") {
		t.Fatalf("Put before Load = %v, want error", err)
	}
}

func TestLoadTwiceRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	if err := s.Load(); err == nil {
		t.Fatal("second Load accepted")
	}
}

func TestLogAppendAndQueries(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	s := NewMemory().WithClock(clock)
	log := MustLog(s, "execlog")

	seq1, err := log.Append(LogEntry{Instance: "i1", Kind: "created"})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	seq2, _ := log.Append(LogEntry{Instance: "i1", Kind: "phase-entered", Detail: "elaboration"})
	clock.Advance(time.Hour)
	seq3, _ := log.Append(LogEntry{Instance: "i2", Kind: "created"})

	if seq1 != 1 || seq2 != 2 || seq3 != 3 {
		t.Fatalf("seqs = %d %d %d", seq1, seq2, seq3)
	}
	i1 := log.ByInstance("i1")
	if len(i1) != 2 || i1[1].Detail != "elaboration" {
		t.Fatalf("ByInstance(i1) = %+v", i1)
	}
	if got := log.ByInstance("ghost"); len(got) != 0 {
		t.Fatalf("ByInstance(ghost) = %+v", got)
	}
	mid := time.Date(2009, 2, 1, 0, 30, 0, 0, time.UTC)
	end := time.Date(2009, 2, 1, 1, 30, 0, 0, time.UTC)
	ranged := log.Range(mid, end)
	if len(ranged) != 1 || ranged[0].Kind != "phase-entered" {
		t.Fatalf("Range = %+v", ranged)
	}
	if log.Len() != 3 || len(log.All()) != 3 {
		t.Fatalf("Len/All = %d/%d", log.Len(), len(log.All()))
	}
}

func TestLogPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := MustLog(s, "execlog")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := log.Append(LogEntry{Instance: "i1", Kind: "tick", Data: json.RawMessage(`{"n":1}`)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log2 := MustLog(s2, "execlog")
	if err := s2.Load(); err != nil {
		t.Fatal(err)
	}
	if log2.Len() != 5 {
		t.Fatalf("replayed log len = %d, want 5", log2.Len())
	}
	// Sequence numbering must continue, not restart.
	seq, err := log2.Append(LogEntry{Instance: "i1", Kind: "tick"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("next seq after replay = %d, want 6", seq)
	}
	s2.Close()
}

func TestLogSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := MustLog(s, "execlog")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := log.Append(LogEntry{Instance: "i1", Kind: "tick"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log2 := MustLog(s2, "execlog")
	if err := s2.Load(); err != nil {
		t.Fatal(err)
	}
	if log2.Len() != 10 {
		t.Fatalf("log after compaction = %d entries, want all 10 (logs are history)", log2.Len())
	}
}

func TestStoreNowUsesClock(t *testing.T) {
	start := time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)
	s := NewMemory().WithClock(vclock.NewFake(start))
	if !s.Now().Equal(start) {
		t.Fatalf("Now = %v", s.Now())
	}
}
