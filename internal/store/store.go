package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// journaled is implemented by every repository and log attached to a
// Store; it lets the store replay journal entries into them and collect
// snapshot entries for compaction.
type journaled interface {
	applyEntry(Entry) error
	snapshotEntries() []Entry
}

// Store coordinates a set of named repositories and logs over a single
// shared journal. Create repositories with NewRepo / NewLog, then call
// Load once to replay any existing journal, then use the store.
//
// A Store created by NewMemory keeps everything in memory only.
type Store struct {
	mu          sync.Mutex
	dir         string
	journal     *Journal
	journalSync bool
	clock       vclock.Clock
	parts       map[string]journaled
	loaded      bool
}

// Options configure Open.
type Options struct {
	// SyncEvery makes every append fsync. Slower, durable.
	SyncEvery bool
	// Clock stamps journal entries; nil means the wall clock.
	Clock vclock.Clock
}

// journalName is the journal file inside a store directory.
const journalName = "gelee.journal"

// Open creates a persistent store rooted at dir (created if missing).
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	clock := opts.Clock
	if clock == nil {
		clock = vclock.System
	}
	// The journal itself is opened in Load, after replay has determined
	// the last sequence number.
	return &Store{
		dir:         dir,
		clock:       clock,
		journalSync: opts.SyncEvery,
		parts:       make(map[string]journaled),
	}, nil
}

// NewMemory returns a store with no persistence.
func NewMemory() *Store {
	return &Store{
		clock:  vclock.System,
		parts:  make(map[string]journaled),
		loaded: true,
	}
}

// WithClock overrides the store's clock (used by tests and the virtual-
// time benchmarks). It returns the store for chaining.
func (s *Store) WithClock(c vclock.Clock) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = c
	return s
}

func (s *Store) register(name string, part journaled) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parts[name]; ok {
		return fmt.Errorf("store: repository %q already registered", name)
	}
	s.parts[name] = part
	return nil
}

// Load replays the journal into every registered repository and opens
// the journal for appending. It must be called exactly once, after all
// repositories are created and before any mutation. In-memory stores
// may skip it.
func (s *Store) Load() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		s.loaded = true
		return nil
	}
	if s.journal != nil {
		return fmt.Errorf("store: Load called twice")
	}
	path := filepath.Join(s.dir, journalName)
	_, lastSeq, err := ReplayJournal(path, func(e Entry) error {
		part, ok := s.parts[e.Repo]
		if !ok {
			// Forward compatibility: entries for repositories this
			// deployment doesn't know are skipped, not fatal.
			return nil
		}
		return part.applyEntry(e)
	})
	if err != nil {
		return err
	}
	j, err := OpenJournal(path, lastSeq, s.journalSync)
	if err != nil {
		return err
	}
	s.journal = j
	s.loaded = true
	return nil
}

// append writes an entry for a repository, stamping the clock time.
func (s *Store) append(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.loaded {
		return fmt.Errorf("store: mutation before Load")
	}
	if s.journal == nil {
		return nil // memory-only
	}
	e.Time = s.clock.Now()
	if _, err := s.journal.Append(e); err != nil {
		return err
	}
	return nil
}

// Compact rewrites the journal from the live state of every registered
// repository, dropping superseded entries. The write is atomic: the new
// journal is built in a temp file and renamed over the old one.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	names := make([]string, 0, len(s.parts))
	for name := range s.parts {
		names = append(names, name)
	}
	sort.Strings(names)

	tmp := filepath.Join(s.dir, journalName+".compact")
	j, err := OpenJournal(tmp, 0, false)
	if err != nil {
		return err
	}
	now := s.clock.Now()
	for _, name := range names {
		for _, e := range s.parts[name].snapshotEntries() {
			e.Time = now
			if _, err := j.Append(e); err != nil {
				j.Close()
				os.Remove(tmp)
				return err
			}
		}
	}
	if err := j.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.journal.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	path := filepath.Join(s.dir, journalName)
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: swap compacted journal: %w", err)
	}
	_, lastSeq, err := ReplayJournal(path, func(Entry) error { return nil })
	if err != nil {
		return err
	}
	nj, err := OpenJournal(path, lastSeq, s.journalSync)
	if err != nil {
		return err
	}
	s.journal = nj
	return nil
}

// Close flushes and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// Now exposes the store clock, so higher layers stamp consistently.
func (s *Store) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock.Now()
}
