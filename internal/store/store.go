package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// journaled is implemented by every repository and log attached to a
// Store; it lets the store replay journal entries into them, collect
// snapshot entries for compaction, and report live sizes for stats.
type journaled interface {
	applyEntry(Entry) error
	snapshotEntries() []Entry
	size() int
}

// Store coordinates a set of named repositories and logs over a single
// shared Engine. Create repositories with NewRepo / NewLog, then call
// Load once to replay any existing state, then use the store.
//
// Concurrency: mutations from different goroutines proceed in
// parallel — the store read-lock is shared on the commit path, the
// engine group-commits, and repositories stripe their own locks per
// shard. Load, Compact and Close take the lock exclusively.
type Store struct {
	mu         sync.RWMutex
	engine     Engine
	clock      vclock.Clock
	parts      map[string]journaled
	shards     int
	loaded     bool
	loadCalled bool
	closed     bool
}

// Options configure a Store.
type Options struct {
	// Sync makes the engine fsync every group-commit batch: durable,
	// and far cheaper than per-append fsync under concurrency.
	Sync bool
	// SyncEveryAppend commits and fsyncs each append individually —
	// the pre-engine baseline, kept for comparison benchmarks.
	SyncEveryAppend bool
	// Shards is the repository lock-stripe count (default
	// DefaultShards, minimum 1). More shards, less contention.
	Shards int
	// FlushInterval is how long the group-commit writer waits to grow
	// a batch. 0 = opportunistic (commit whatever is queued).
	FlushInterval time.Duration
	// FlushBatch caps journal entries per group-commit batch.
	FlushBatch int
	// Clock stamps journal entries; nil means the wall clock.
	Clock vclock.Clock
}

// DefaultShards is the repository lock-stripe count when Options.Shards
// is zero.
const DefaultShards = 16

// journalName is the journal file inside a store directory.
const journalName = "gelee.journal"

// Stats is the store-wide health snapshot served by the admin API:
// engine counters plus per-repository live sizes.
type Stats struct {
	Engine EngineStats    `json:"engine"`
	Shards int            `json:"shards"`
	Repos  map[string]int `json:"repos"`
	// Instances carries the instance collection's engine counters when
	// the deployment persists lifecycle instances (it runs on its own
	// engine, see Instances); nil otherwise. Filled by the facade.
	Instances *EngineStats `json:"instances,omitempty"`
}

// New builds a store on an explicit engine — the pluggable entry point.
// Load must be called (once) before any mutation.
func New(engine Engine, opts Options) *Store {
	clock := opts.Clock
	if clock == nil {
		clock = vclock.System
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	return &Store{
		engine: engine,
		clock:  clock,
		shards: shards,
		parts:  make(map[string]journaled),
	}
}

// Open creates a persistent store rooted at dir (created if missing),
// backed by the group-commit journal engine.
func Open(dir string, opts Options) (*Store, error) {
	engine, err := NewJournalEngine(JournalConfig{
		Dir:             dir,
		Sync:            opts.Sync,
		SyncEveryAppend: opts.SyncEveryAppend,
		FlushInterval:   opts.FlushInterval,
		FlushBatch:      opts.FlushBatch,
	})
	if err != nil {
		return nil, err
	}
	return New(engine, opts), nil
}

// NewMemory returns a store with no persistence, ready for use without
// Load (calling Load anyway is harmless and replays nothing).
func NewMemory() *Store {
	s := New(NewMemoryEngine(), Options{})
	s.loaded = true
	return s
}

// WithClock overrides the store's clock (used by tests and the virtual-
// time benchmarks). It returns the store for chaining.
func (s *Store) WithClock(c vclock.Clock) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = c
	return s
}

func (s *Store) register(name string, part journaled) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parts[name]; ok {
		return fmt.Errorf("store: repository %q already registered", name)
	}
	s.parts[name] = part
	return nil
}

// numShards reports the lock-stripe count repositories should use.
func (s *Store) numShards() int { return s.shards }

// Load replays the engine into every registered repository and opens
// the engine for appending. It must be called exactly once, after all
// repositories are created and before any mutation. In-memory stores
// created by NewMemory may skip it.
func (s *Store) Load() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loadCalled {
		return fmt.Errorf("store: Load called twice")
	}
	s.loadCalled = true
	err := s.engine.Replay(func(e Entry) error {
		part, ok := s.parts[e.Repo]
		if !ok {
			// Forward compatibility: entries for repositories this
			// deployment doesn't know are skipped, not fatal.
			return nil
		}
		return part.applyEntry(e)
	})
	if err != nil {
		return err
	}
	s.loaded = true
	return nil
}

// commit journals an entry; the engine applies the in-memory mutation
// via the onCommit hook, in journal order, before acknowledging. The
// shared read-lock keeps commits concurrent with each other (that
// concurrency is what feeds the engine's group commit) while excluding
// Load, Compact and Close.
func (s *Store) commit(e Entry, apply func()) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.loaded {
		return fmt.Errorf("store: mutation before Load")
	}
	if s.closed {
		return ErrClosed
	}
	e.Time = s.clock.Now()
	_, err := s.engine.Append(e, apply)
	return err
}

// Compact rewrites the engine's contents from the live state of every
// registered repository, dropping superseded entries. Commits are
// excluded for the duration, so no acknowledged write can be lost
// between snapshot and rewrite.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.loaded || s.closed {
		return nil
	}
	names := make([]string, 0, len(s.parts))
	for name := range s.parts {
		names = append(names, name)
	}
	sort.Strings(names)

	now := s.clock.Now()
	var entries []Entry
	for _, name := range names {
		for _, e := range s.parts[name].snapshotEntries() {
			e.Time = now
			entries = append(entries, e)
		}
	}
	return s.engine.Rewrite(entries)
}

// Stats reports engine health plus per-repository sizes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Engine: s.engine.Stats(),
		Shards: s.shards,
		Repos:  make(map[string]int, len(s.parts)),
	}
	for name, part := range s.parts {
		st.Repos[name] = part.size()
	}
	return st
}

// Close drains and closes the engine. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.engine.Close()
}

// Now exposes the store clock, so higher layers stamp consistently.
func (s *Store) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clock.Now()
}
