package store

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// journaled is implemented by every repository and log attached to a
// Store; it lets the store replay journal entries into them, capture
// fold images for snapshot compaction, and report live sizes for
// stats.
type journaled interface {
	applyEntry(Entry) error
	// foldEntries returns the live-entry image plus the fold boundary
	// (the journal sequence of the newest entry the image reflects) and
	// an optional commit hook the engine runs once the snapshot is
	// durably installed. Replay skips tail entries at or below the
	// boundary. Idempotent parts (keyed repositories, where re-applying
	// per-key history converges) report boundary 0 and are never
	// skipped; append-only parts (logs) must report their real boundary
	// or folding would double their history. Parts may spill cold state
	// through the Archiver (nil for engines without archive storage)
	// and retire the in-memory copy in the commit hook — never earlier.
	foldEntries(ar Archiver) ([]Entry, uint64, func())
	// replayKey buckets an entry for parallel replay: entries with the
	// same (part, key) pair must apply in stream order, entries with
	// different keys commute. Keyed repositories return the entry ID;
	// logs return "" so their whole stream stays ordered.
	replayKey(e Entry) string
	size() int
}

// Store coordinates a set of named repositories and logs over a single
// shared Engine. Create repositories with NewRepo / NewLog, then call
// Load once to replay any existing state, then use the store.
//
// Concurrency: mutations from different goroutines proceed in
// parallel — the store read-lock is shared on the commit path, the
// engine group-commits, and repositories stripe their own locks per
// shard. Load and Close take the lock exclusively. Compact holds it
// shared: compaction is seal-then-fold on the segmented journal and
// runs concurrently with writers (see the package doc).
type Store struct {
	mu         sync.RWMutex
	engine     Engine
	clock      vclock.Clock
	parts      map[string]journaled
	shards     int
	window     int // log live-window entry count; -1 = inline (legacy)
	loaded     bool
	loadCalled bool
	closed     bool

	// onAppendResult observes every commit outcome (Options.
	// OnAppendResult); nil = no observer.
	onAppendResult func(error)

	// Background folder, started by Load; the engine's OnSeal (wired
	// by Open) pokes it on every qualifying rotation. The pacing policy
	// (minInterval/minGarbage) gates what a poke actually does;
	// Compact bypasses it.
	folds       *folder
	minInterval time.Duration
	minGarbage  float64
	lastFold    atomic.Int64 // unix nanos of the last successful fold
	forcedFolds atomic.Uint64
	skipByTime  atomic.Uint64
	skipByRatio atomic.Uint64

	// retry is the timer re-poking the folder when a fold was deferred
	// by minInterval; retryArmed coalesces to one pending retry.
	retryMu    sync.Mutex
	retry      *time.Timer
	retryArmed bool

	// Background scrubber (Options.Integrity.ScrubInterval); started by
	// Load, stopped by Close.
	scrubInterval time.Duration
	scrubBudget   int64
	stopScrub     func()
}

// Options configure a Store.
type Options struct {
	// Sync makes the engine fsync every group-commit batch: durable,
	// and far cheaper than per-append fsync under concurrency.
	Sync bool
	// SyncEveryAppend commits and fsyncs each append individually —
	// the pre-engine baseline, kept for comparison benchmarks.
	SyncEveryAppend bool
	// Shards is the repository lock-stripe count (default
	// DefaultShards, minimum 1). More shards, less contention.
	Shards int
	// FlushInterval is how long the group-commit writer waits to grow
	// a batch. 0 = opportunistic (commit whatever is queued).
	FlushInterval time.Duration
	// FlushBatch caps journal entries per group-commit batch.
	FlushBatch int
	// SegmentMaxBytes rotates the journal's active segment once it
	// grows past this size; sealed segments are folded into a snapshot
	// by a background folder so restart replay stays bounded. 0
	// disables automatic rotation (Compact still seals and folds on
	// demand).
	SegmentMaxBytes int64
	// SnapshotEvery folds once this many sealed segments accumulate
	// (0 = every rotation).
	SnapshotEvery int
	// LogLiveWindow is how many of a log's newest entries stay in RAM
	// and in the snapshot; older entries are spilled by folds into
	// immutable archive files carried by reference. 0 means
	// DefaultLogLiveWindow; negative disables archiving (every fold
	// rewrites full log history inline — the legacy behavior).
	LogLiveWindow int
	// FoldMinInterval is the minimum wall-clock spacing between
	// background folds: a seal poking the folder sooner defers the
	// fold (a retry timer re-pokes when the interval elapses). 0 folds
	// on every qualifying poke. Compact ignores it.
	FoldMinInterval time.Duration
	// FoldMinGarbage is the minimum garbage ratio — sealed backlog
	// bytes over (sealed backlog + newest snapshot) bytes — a
	// background fold requires; below it the fold is skipped until
	// more garbage accumulates. 0 disables the check. Compact ignores
	// it.
	FoldMinGarbage float64
	// ReadCacheEntries is the per-shard bound of the LRU read cache a
	// repository gets when the owner calls Repo.EnableReadCache with
	// this value (the store itself only carries the knob; each
	// repository opts in with its own prepare function). 0 means
	// DefaultReadCacheEntries; negative disables caching.
	ReadCacheEntries int
	// Clock stamps journal entries; nil means the wall clock.
	Clock vclock.Clock
	// OnAppendResult, when set, observes the outcome of every commit
	// (nil error = durably acknowledged). The resilience layer feeds
	// it into the health state machine so a failing journal flips the
	// system read-only instead of silently dropping durability. Called
	// on the commit path — must be O(1) and must not call back into
	// the store.
	OnAppendResult func(error)
	// Integrity tunes corruption detection on the journal: record
	// framing, quarantine mode, the background scrubber (see
	// IntegrityOptions).
	Integrity IntegrityOptions
}

// DefaultShards is the repository lock-stripe count when Options.Shards
// is zero.
const DefaultShards = 16

// DefaultReadCacheEntries is the per-shard read-cache bound when
// Options.ReadCacheEntries is zero. Sizing: the hot-key sketch tracks
// hotKeysPerShard (8) dominant keys per shard, and a cache is only
// useful when it comfortably covers the observed hot set plus churn —
// 64 entries per shard is 8x the sketch capacity, and with the default
// 16 shards bounds a model cache at 1024 decoded values (a few MB for
// mid-size models).
const DefaultReadCacheEntries = 64

// DefaultLogLiveWindow is the per-log live window when
// Options.LogLiveWindow is zero: enough recent history for every hot
// read path (timeline backfill, recent-events pages) while keeping
// fold cost flat.
const DefaultLogLiveWindow = 4096

// journalName is the active journal segment inside a journal directory
// (also the whole journal in pre-segmentation deployments, which makes
// old data directories open unchanged).
const journalName = "gelee.journal"

// FoldPolicyStats reports the pacing policy's configuration and what
// it has done: folds forced by Compact, and background folds skipped
// by the interval or garbage-ratio gates.
type FoldPolicyStats struct {
	MinIntervalMS   int64   `json:"min_interval_ms,omitempty"`
	MinGarbage      float64 `json:"min_garbage,omitempty"`
	Forced          uint64  `json:"forced,omitempty"`
	SkippedInterval uint64  `json:"skipped_interval,omitempty"`
	SkippedGarbage  uint64  `json:"skipped_garbage,omitempty"`
}

// Stats is the store-wide health snapshot served by the admin API:
// engine counters plus per-repository live sizes, per-log hot/cold
// splits, per-repository read stats and the fold policy counters.
type Stats struct {
	Engine EngineStats    `json:"engine"`
	Shards int            `json:"shards"`
	Repos  map[string]int `json:"repos"`
	// Instances carries the instance collection's engine counters when
	// the deployment persists lifecycle instances (it runs on its own
	// engine, see Instances); nil otherwise. Filled by the facade.
	Instances  *EngineStats             `json:"instances,omitempty"`
	FoldPolicy FoldPolicyStats          `json:"fold_policy"`
	Logs       map[string]LogStats      `json:"logs,omitempty"`
	Reads      map[string]RepoReadStats `json:"reads,omitempty"`
}

// New builds a store on an explicit engine — the pluggable entry point.
// Load must be called (once) before any mutation.
func New(engine Engine, opts Options) *Store {
	clock := opts.Clock
	if clock == nil {
		clock = vclock.System
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	window := opts.LogLiveWindow
	if window == 0 {
		window = DefaultLogLiveWindow
	} else if window < 0 {
		window = -1
	}
	return &Store{
		engine:         engine,
		clock:          clock,
		shards:         shards,
		window:         window,
		parts:          make(map[string]journaled),
		folds:          newFolder(),
		minInterval:    opts.FoldMinInterval,
		minGarbage:     opts.FoldMinGarbage,
		onAppendResult: opts.OnAppendResult,
	}
}

// Open creates a persistent store rooted at dir (created if missing),
// backed by the group-commit journal engine. With SegmentMaxBytes set
// the journal rotates and a background folder compacts sealed segments
// into snapshots without excluding writers.
func Open(dir string, opts Options) (*Store, error) {
	s := New(nil, opts)
	engine, err := NewJournalEngine(JournalConfig{
		Dir:             dir,
		Sync:            opts.Sync,
		SyncEveryAppend: opts.SyncEveryAppend,
		FlushInterval:   opts.FlushInterval,
		FlushBatch:      opts.FlushBatch,
		SegmentMaxBytes: opts.SegmentMaxBytes,
		SnapshotEvery:   opts.SnapshotEvery,
		OnSeal:          s.scheduleFold,
		Integrity:       opts.Integrity,
	})
	if err != nil {
		return nil, err
	}
	s.engine = engine
	s.scrubInterval = opts.Integrity.ScrubInterval
	s.scrubBudget = opts.Integrity.ScrubBytesPerTick
	return s, nil
}

// NewMemory returns a store with no persistence, ready for use without
// Load (calling Load anyway is harmless and replays nothing).
func NewMemory() *Store {
	s := New(NewMemoryEngine(), Options{})
	s.loaded = true
	return s
}

// WithClock overrides the store's clock (used by tests and the virtual-
// time benchmarks). It returns the store for chaining.
func (s *Store) WithClock(c vclock.Clock) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = c
	return s
}

func (s *Store) register(name string, part journaled) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parts[name]; ok {
		return fmt.Errorf("store: repository %q already registered", name)
	}
	s.parts[name] = part
	return nil
}

// numShards reports the lock-stripe count repositories should use.
func (s *Store) numShards() int { return s.shards }

// logWindow reports the configured log live-window (-1 = inline).
func (s *Store) logWindow() int { return s.window }

// readArchive streams one archived ref through fn — the log's cold
// read path. Archives are immutable on disk, so no store lock is
// needed; reads stay valid across concurrent folds.
func (s *Store) readArchive(ref ArchiveRef, fn func(Entry) error) error {
	return s.engine.ReadArchive(ref, fn)
}

// Load replays the engine into every registered repository and opens
// the engine for appending, fanning the apply work out across one
// worker per CPU (entries of independent keys commute; see
// LoadParallel). It must be called exactly once, after all
// repositories are created and before any mutation. In-memory stores
// created by NewMemory may skip it.
func (s *Store) Load() error {
	return s.LoadParallel(runtime.GOMAXPROCS(0))
}

// LoadParallel is Load with an explicit worker count: the engine
// streams entries in commit order while workers apply them, sharded by
// (part, key) so every repository key's — and every log's — entries
// apply in exactly the sequential order. workers <= 1 degrades to the
// plain sequential replay.
func (s *Store) LoadParallel(workers int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loadCalled {
		return fmt.Errorf("store: Load called twice")
	}
	s.loadCalled = true
	var err error
	if workers <= 1 {
		err = s.engine.Replay(func(e Entry) error {
			part, ok := s.parts[e.Repo]
			if !ok {
				// Forward compatibility: entries for repositories this
				// deployment doesn't know are skipped, not fatal.
				return nil
			}
			return part.applyEntry(e)
		})
	} else {
		fo := newFanOut(workers, func(e Entry) error {
			return s.parts[e.Repo].applyEntry(e)
		})
		err = s.engine.Replay(func(e Entry) error {
			part, ok := s.parts[e.Repo]
			if !ok {
				return nil
			}
			return fo.dispatch(e.Repo+"\x00"+part.replayKey(e), e)
		})
		if finishErr := fo.finish(); err == nil {
			err = finishErr
		}
	}
	if err != nil {
		return err
	}
	s.loaded = true
	// Fold errors are counted on the engine stats (FoldErrors); the
	// journal keeps growing until a later fold succeeds, so no data is
	// ever at risk.
	s.folds.start(func() { s.fold(false) })
	if s.scrubInterval > 0 {
		s.stopScrub = scrubLoop(s.scrubInterval, s.scrubBudget, s.engine.Scrub)
	}
	return nil
}

// Scrub runs one bounded background-verification tick on the engine —
// the on-demand hook behind the admin API and tests; the interval loop
// (Options.Integrity.ScrubInterval) calls the same engine method.
func (s *Store) Scrub(maxBytes int64) ScrubResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ScrubResult{}
	}
	return s.engine.Scrub(maxBytes)
}

// scheduleFold pokes the background folder — the engine's OnSeal hook.
func (s *Store) scheduleFold() { s.folds.poke() }

// commit journals an entry; the engine applies the in-memory mutation
// via the onCommit hook, in journal order, before acknowledging. The
// shared read-lock keeps commits concurrent with each other (that
// concurrency is what feeds the engine's group commit) while excluding
// Load and Close.
func (s *Store) commit(e Entry, apply func(seq uint64)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.loaded {
		return fmt.Errorf("store: mutation before Load")
	}
	if s.closed {
		return ErrClosed
	}
	e.Time = s.clock.Now()
	_, err := s.engine.Append(e, apply)
	if s.onAppendResult != nil {
		s.onAppendResult(err)
	}
	return err
}

// QueueDepth is the engine's current commit-queue occupancy — the
// saturation signal admission control samples per mutating request.
func (s *Store) QueueDepth() int { return s.engine.Depth() }

// Compact compacts the journal without stopping writers: the active
// segment is sealed (O(1) under the appender lock), then every sealed
// segment is folded into a snapshot of the live state and deleted —
// bypassing the pacing policy, since an operator asking for compaction
// means now. Unlike the pre-segmentation rewrite, commits proceed for
// the whole duration — the store lock is held shared — and no
// acknowledged write can be lost: the fold boundary is fixed before
// the live image is captured, so the snapshot is a superset of
// everything it replaces, and replay skips the overlap.
func (s *Store) Compact() error {
	s.mu.RLock()
	if !s.loaded || s.closed {
		s.mu.RUnlock()
		return nil
	}
	err := s.engine.Seal()
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	s.forcedFolds.Add(1)
	return s.fold(true)
}

// fold runs one snapshot fold over everything sealed so far. Unless
// forced it first consults the pacing policy: nothing sealed means
// nothing to do; a fold too soon after the last is deferred (with a
// retry armed for when the interval elapses); a sealed backlog below
// the garbage-ratio floor waits for more garbage. Compact forces.
func (s *Store) fold(force bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.loaded || s.closed {
		return nil
	}
	if !force {
		est := s.engine.Stats()
		if est.SealedSegments == 0 {
			return nil
		}
		if s.minInterval > 0 {
			since := s.clock.Now().Sub(time.Unix(0, s.lastFold.Load()))
			if since < s.minInterval {
				s.skipByTime.Add(1)
				s.armRetry(s.minInterval - since)
				return nil
			}
		}
		if s.minGarbage > 0 {
			if total := est.SealedBytes + est.SnapshotBytes; total > 0 &&
				float64(est.SealedBytes)/float64(total) < s.minGarbage {
				s.skipByRatio.Add(1)
				return nil
			}
		}
	}
	err := s.engine.Fold(s.foldImage)
	if err == nil {
		s.lastFold.Store(s.clock.Now().UnixNano())
	}
	return err
}

// armRetry schedules one folder re-poke after d — how a fold deferred
// by FoldMinInterval eventually runs even if no further seal occurs.
// Coalesced: at most one retry pending at a time.
func (s *Store) armRetry(d time.Duration) {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	if s.retryArmed {
		return
	}
	s.retryArmed = true
	s.retry = time.AfterFunc(d, func() {
		s.retryMu.Lock()
		s.retryArmed = false
		s.retryMu.Unlock()
		s.folds.poke()
	})
}

// foldImage captures the live-entry image of every registered part —
// each under its own locks only, so writers are never excluded — with
// per-part fold boundaries stamped into Entry.Seq (see journaled).
// Parts' commit hooks (retiring state they archived through ar) are
// merged into one, which the engine runs after the snapshot installs.
func (s *Store) foldImage(ar Archiver) FoldImage {
	names := make([]string, 0, len(s.parts))
	for name := range s.parts {
		names = append(names, name)
	}
	sort.Strings(names)

	now := s.clock.Now()
	var entries []Entry
	var commits []func()
	for _, name := range names {
		img, boundary, commit := s.parts[name].foldEntries(ar)
		for _, e := range img {
			e.Seq = boundary
			e.Time = now
			entries = append(entries, e)
		}
		if commit != nil {
			commits = append(commits, commit)
		}
	}
	var commit func()
	if len(commits) > 0 {
		commit = func() {
			for _, c := range commits {
				c()
			}
		}
	}
	return FoldImage{Entries: entries, Commit: commit}
}

// Stats reports engine health plus per-repository sizes, per-log
// hot/cold splits, read stats and fold-policy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Engine: s.engine.Stats(),
		Shards: s.shards,
		Repos:  make(map[string]int, len(s.parts)),
		FoldPolicy: FoldPolicyStats{
			MinIntervalMS:   s.minInterval.Milliseconds(),
			MinGarbage:      s.minGarbage,
			Forced:          s.forcedFolds.Load(),
			SkippedInterval: s.skipByTime.Load(),
			SkippedGarbage:  s.skipByRatio.Load(),
		},
	}
	for name, part := range s.parts {
		st.Repos[name] = part.size()
		if lp, ok := part.(interface{ logStats() LogStats }); ok {
			if st.Logs == nil {
				st.Logs = make(map[string]LogStats)
			}
			st.Logs[name] = lp.logStats()
		}
		if rp, ok := part.(interface{ readStats() RepoReadStats }); ok {
			if st.Reads == nil {
				st.Reads = make(map[string]RepoReadStats)
			}
			st.Reads[name] = rp.readStats()
		}
	}
	return st
}

// PurgeReadCaches empties every repository's read cache. Called when
// records change out from under the decoded in-memory state without
// passing through Put/Delete/replay — quarantine latching a corrupt
// file aside, offline repair of the data directory — so no cached
// decode outlives the record it came from. Takes the store lock: do
// not call from integrity callbacks that can fire mid-Load (the store
// mutex is held there) — purge the repos directly instead, each
// Repo.PurgeReadCache touches only its shard cache locks.
func (s *Store) PurgeReadCaches() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, part := range s.parts {
		if rp, ok := part.(interface{ PurgeReadCache() }); ok {
			rp.PurgeReadCache()
		}
	}
}

// Close drains and closes the engine. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.retryMu.Lock()
	if s.retry != nil {
		s.retry.Stop()
	}
	s.retryMu.Unlock()
	if s.stopScrub != nil {
		s.stopScrub()
	}
	s.folds.stop()
	return s.engine.Close()
}

// Now exposes the store clock, so higher layers stamp consistently.
func (s *Store) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clock.Now()
}
