package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// journaled is implemented by every repository and log attached to a
// Store; it lets the store replay journal entries into them, capture
// fold images for snapshot compaction, and report live sizes for
// stats.
type journaled interface {
	applyEntry(Entry) error
	// foldEntries returns the live-entry image plus the fold boundary:
	// the journal sequence of the newest entry the image reflects.
	// Replay skips tail entries at or below the boundary. Idempotent
	// parts (keyed repositories, where re-applying per-key history
	// converges) report boundary 0 and are never skipped; append-only
	// parts (logs) must report their real boundary or folding would
	// double their history.
	foldEntries() ([]Entry, uint64)
	size() int
}

// Store coordinates a set of named repositories and logs over a single
// shared Engine. Create repositories with NewRepo / NewLog, then call
// Load once to replay any existing state, then use the store.
//
// Concurrency: mutations from different goroutines proceed in
// parallel — the store read-lock is shared on the commit path, the
// engine group-commits, and repositories stripe their own locks per
// shard. Load and Close take the lock exclusively. Compact holds it
// shared: compaction is seal-then-fold on the segmented journal and
// runs concurrently with writers (see the package doc).
type Store struct {
	mu         sync.RWMutex
	engine     Engine
	clock      vclock.Clock
	parts      map[string]journaled
	shards     int
	loaded     bool
	loadCalled bool
	closed     bool

	// Background folder, started by Load; the engine's OnSeal (wired
	// by Open) pokes it on every qualifying rotation.
	folds *folder
}

// Options configure a Store.
type Options struct {
	// Sync makes the engine fsync every group-commit batch: durable,
	// and far cheaper than per-append fsync under concurrency.
	Sync bool
	// SyncEveryAppend commits and fsyncs each append individually —
	// the pre-engine baseline, kept for comparison benchmarks.
	SyncEveryAppend bool
	// Shards is the repository lock-stripe count (default
	// DefaultShards, minimum 1). More shards, less contention.
	Shards int
	// FlushInterval is how long the group-commit writer waits to grow
	// a batch. 0 = opportunistic (commit whatever is queued).
	FlushInterval time.Duration
	// FlushBatch caps journal entries per group-commit batch.
	FlushBatch int
	// SegmentMaxBytes rotates the journal's active segment once it
	// grows past this size; sealed segments are folded into a snapshot
	// by a background folder so restart replay stays bounded. 0
	// disables automatic rotation (Compact still seals and folds on
	// demand).
	SegmentMaxBytes int64
	// SnapshotEvery folds once this many sealed segments accumulate
	// (0 = every rotation).
	SnapshotEvery int
	// Clock stamps journal entries; nil means the wall clock.
	Clock vclock.Clock
}

// DefaultShards is the repository lock-stripe count when Options.Shards
// is zero.
const DefaultShards = 16

// journalName is the active journal segment inside a journal directory
// (also the whole journal in pre-segmentation deployments, which makes
// old data directories open unchanged).
const journalName = "gelee.journal"

// Stats is the store-wide health snapshot served by the admin API:
// engine counters plus per-repository live sizes.
type Stats struct {
	Engine EngineStats    `json:"engine"`
	Shards int            `json:"shards"`
	Repos  map[string]int `json:"repos"`
	// Instances carries the instance collection's engine counters when
	// the deployment persists lifecycle instances (it runs on its own
	// engine, see Instances); nil otherwise. Filled by the facade.
	Instances *EngineStats `json:"instances,omitempty"`
}

// New builds a store on an explicit engine — the pluggable entry point.
// Load must be called (once) before any mutation.
func New(engine Engine, opts Options) *Store {
	clock := opts.Clock
	if clock == nil {
		clock = vclock.System
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	return &Store{
		engine: engine,
		clock:  clock,
		shards: shards,
		parts:  make(map[string]journaled),
		folds:  newFolder(),
	}
}

// Open creates a persistent store rooted at dir (created if missing),
// backed by the group-commit journal engine. With SegmentMaxBytes set
// the journal rotates and a background folder compacts sealed segments
// into snapshots without excluding writers.
func Open(dir string, opts Options) (*Store, error) {
	s := New(nil, opts)
	engine, err := NewJournalEngine(JournalConfig{
		Dir:             dir,
		Sync:            opts.Sync,
		SyncEveryAppend: opts.SyncEveryAppend,
		FlushInterval:   opts.FlushInterval,
		FlushBatch:      opts.FlushBatch,
		SegmentMaxBytes: opts.SegmentMaxBytes,
		SnapshotEvery:   opts.SnapshotEvery,
		OnSeal:          s.scheduleFold,
	})
	if err != nil {
		return nil, err
	}
	s.engine = engine
	return s, nil
}

// NewMemory returns a store with no persistence, ready for use without
// Load (calling Load anyway is harmless and replays nothing).
func NewMemory() *Store {
	s := New(NewMemoryEngine(), Options{})
	s.loaded = true
	return s
}

// WithClock overrides the store's clock (used by tests and the virtual-
// time benchmarks). It returns the store for chaining.
func (s *Store) WithClock(c vclock.Clock) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = c
	return s
}

func (s *Store) register(name string, part journaled) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parts[name]; ok {
		return fmt.Errorf("store: repository %q already registered", name)
	}
	s.parts[name] = part
	return nil
}

// numShards reports the lock-stripe count repositories should use.
func (s *Store) numShards() int { return s.shards }

// Load replays the engine into every registered repository and opens
// the engine for appending. It must be called exactly once, after all
// repositories are created and before any mutation. In-memory stores
// created by NewMemory may skip it.
func (s *Store) Load() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loadCalled {
		return fmt.Errorf("store: Load called twice")
	}
	s.loadCalled = true
	err := s.engine.Replay(func(e Entry) error {
		part, ok := s.parts[e.Repo]
		if !ok {
			// Forward compatibility: entries for repositories this
			// deployment doesn't know are skipped, not fatal.
			return nil
		}
		return part.applyEntry(e)
	})
	if err != nil {
		return err
	}
	s.loaded = true
	// Fold errors are counted on the engine stats (FoldErrors); the
	// journal keeps growing until a later fold succeeds, so no data is
	// ever at risk.
	s.folds.start(func() { s.fold() })
	return nil
}

// scheduleFold pokes the background folder — the engine's OnSeal hook.
func (s *Store) scheduleFold() { s.folds.poke() }

// commit journals an entry; the engine applies the in-memory mutation
// via the onCommit hook, in journal order, before acknowledging. The
// shared read-lock keeps commits concurrent with each other (that
// concurrency is what feeds the engine's group commit) while excluding
// Load and Close.
func (s *Store) commit(e Entry, apply func(seq uint64)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.loaded {
		return fmt.Errorf("store: mutation before Load")
	}
	if s.closed {
		return ErrClosed
	}
	e.Time = s.clock.Now()
	_, err := s.engine.Append(e, apply)
	return err
}

// Compact compacts the journal without stopping writers: the active
// segment is sealed (O(1) under the appender lock), then every sealed
// segment is folded into a snapshot of the live state and deleted.
// Unlike the pre-segmentation rewrite, commits proceed for the whole
// duration — the store lock is held shared — and no acknowledged write
// can be lost: the fold boundary is fixed before the live image is
// captured, so the snapshot is a superset of everything it replaces,
// and replay skips the overlap.
func (s *Store) Compact() error {
	s.mu.RLock()
	if !s.loaded || s.closed {
		s.mu.RUnlock()
		return nil
	}
	err := s.engine.Seal()
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	return s.fold()
}

// fold runs one snapshot fold over everything sealed so far.
func (s *Store) fold() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.loaded || s.closed {
		return nil
	}
	return s.engine.Fold(s.foldImage)
}

// foldImage captures the live-entry image of every registered part —
// each under its own locks only, so writers are never excluded — with
// per-part fold boundaries stamped into Entry.Seq (see journaled).
func (s *Store) foldImage() []Entry {
	names := make([]string, 0, len(s.parts))
	for name := range s.parts {
		names = append(names, name)
	}
	sort.Strings(names)

	now := s.clock.Now()
	var entries []Entry
	for _, name := range names {
		img, boundary := s.parts[name].foldEntries()
		for _, e := range img {
			e.Seq = boundary
			e.Time = now
			entries = append(entries, e)
		}
	}
	return entries
}

// Stats reports engine health plus per-repository sizes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Engine: s.engine.Stats(),
		Shards: s.shards,
		Repos:  make(map[string]int, len(s.parts)),
	}
	for name, part := range s.parts {
		st.Repos[name] = part.size()
	}
	return st
}

// Close drains and closes the engine. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.folds.stop()
	return s.engine.Close()
}

// Now exposes the store clock, so higher layers stamp consistently.
func (s *Store) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clock.Now()
}
