package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// openLogStore opens a store with the given log live window and an
// execution log attached, Load already done.
func openLogStore(t *testing.T, dir string, window int) (*Store, *Log) {
	t.Helper()
	s, err := Open(dir, Options{LogLiveWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	lg := MustLog(s, "execlog")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	return s, lg
}

// appendTicks appends n log entries spread over four instances, with a
// tagged detail so histories from different rounds are distinguishable.
func appendTicks(t *testing.T, lg *Log, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := lg.Append(LogEntry{
			Instance: fmt.Sprintf("i%d", i%4),
			Kind:     "tick",
			Detail:   fmt.Sprintf("%s-%d", tag, i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// logJSON renders the full stitched log for bytewise comparison.
func logJSON(t *testing.T, lg *Log) []byte {
	t.Helper()
	data, err := json.Marshal(lg.All())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// archiveFiles lists the archive file names in dir, sorted.
func archiveFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	for _, name := range listNames(t, dir) {
		if strings.HasPrefix(name, "archive.") && strings.HasSuffix(name, ".jsonl") {
			out = append(out, name)
		}
	}
	return out
}

// TestFoldArchivesLogHistory is the tentpole acceptance test: with a
// small live window, compaction spills old log history into archive
// files carried by reference — the snapshot stays bounded, every read
// path still sees full history in order, and a reopen replays only the
// live window plus refs while reading back byte-identically.
func TestFoldArchivesLogHistory(t *testing.T) {
	dir := t.TempDir()
	s, lg := openLogStore(t, dir, 10)
	appendTicks(t, lg, 50, "a")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if got := st.Logs["execlog"]; got.Live != 10 || got.Archived != 40 || got.Archives != 1 {
		t.Fatalf("hot/cold split after compact = %+v, want {10 40 1}", got)
	}
	if st.Engine.ArchivesWritten != 1 || st.Engine.Archives != 1 {
		t.Fatalf("archive counters = written %d, on disk %d, want 1/1", st.Engine.ArchivesWritten, st.Engine.Archives)
	}
	if got := archiveFiles(t, dir); len(got) != 1 || got[0] != "archive.000001.jsonl" {
		t.Fatalf("archive files = %v, want [archive.000001.jsonl]", got)
	}

	// Full history in order, across the cold/live seam.
	all := lg.All()
	if len(all) != 50 {
		t.Fatalf("All() = %d entries, want 50", len(all))
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Fatalf("All()[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	// Per-instance reads stitch archived history too: i0 got ticks
	// 0,4,...,48 — 13 of the 50.
	byInst := lg.ByInstance("i0")
	if len(byInst) != 13 {
		t.Fatalf("ByInstance(i0) = %d entries, want 13", len(byInst))
	}
	if byInst[0].Detail != "a-0" || byInst[12].Detail != "a-48" {
		t.Fatalf("ByInstance(i0) endpoints = %q, %q", byInst[0].Detail, byInst[12].Detail)
	}

	// A second round: the old archive is carried forward by reference
	// (not rewritten), a new one holds the next spill.
	appendTicks(t, lg, 30, "b")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Logs["execlog"]; got.Live != 10 || got.Archived != 70 || got.Archives != 2 {
		t.Fatalf("hot/cold split after 2nd compact = %+v, want {10 70 2}", got)
	}
	before := logJSON(t, lg)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, lg2 := openLogStore(t, dir, 10)
	defer s2.Close()
	rs := s2.Stats().Engine.Replay
	if rs.ArchiveRefs != 2 {
		t.Fatalf("reopen adopted %d archive refs, want 2", rs.ArchiveRefs)
	}
	if streamed := rs.SnapshotEntries + rs.TailEntries; streamed > 15 {
		t.Fatalf("reopen streamed %d entries — replay not bounded by the live window", streamed)
	}
	if lg2.Len() != 80 {
		t.Fatalf("reopened Len = %d, want 80", lg2.Len())
	}
	if after := logJSON(t, lg2); !bytes.Equal(before, after) {
		t.Fatal("full log read diverged across reopen")
	}
	// The paged cursor walks the same history.
	var paged []LogEntry
	after := uint64(0)
	for {
		page, err := lg2.Page(after, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		paged = append(paged, page...)
		after = page[len(page)-1].Seq
	}
	pagedJSON, err := json.Marshal(paged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, pagedJSON) {
		t.Fatal("paged read diverged from full read")
	}
	// Appends continue above all archived history.
	seq, err := lg2.Append(LogEntry{Instance: "i0", Kind: "tick", Detail: "post"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 81 {
		t.Fatalf("post-reopen Append seq = %d, want 81", seq)
	}
}

// TestArchiveCrashBeforeInstall simulates a crash in the window where
// a fold has installed an archive file but not yet the snapshot that
// references it: the next open must delete the unreferenced archive
// and lose no history.
func TestArchiveCrashBeforeInstall(t *testing.T) {
	dir := t.TempDir()
	s, lg := openLogStore(t, dir, 5)
	appendTicks(t, lg, 30, "a")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	before := logJSON(t, lg)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The crashed fold's archive: a real archive file with a number no
	// installed snapshot references.
	data, err := os.ReadFile(filepath.Join(dir, "archive.000001.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "archive.000007.jsonl")
	if err := os.WriteFile(orphan, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, lg2 := openLogStore(t, dir, 5)
	defer s2.Close()
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan archive still on disk after open (stat err %v)", err)
	}
	est := s2.Stats().Engine
	if est.OrphanArchives != 1 {
		t.Fatalf("OrphanArchives = %d, want 1", est.OrphanArchives)
	}
	if est.Archives != 1 {
		t.Fatalf("Archives = %d, want 1 (the referenced one must survive)", est.Archives)
	}
	if after := logJSON(t, lg2); !bytes.Equal(before, after) {
		t.Fatal("history diverged after orphan cleanup")
	}
}

// TestMissingReferencedArchive: an archive a snapshot references is
// load-bearing history — if it is missing or resized, open must fail
// with corruption rather than silently dropping the cold log.
func TestMissingReferencedArchive(t *testing.T) {
	damage := map[string]func(t *testing.T, path string){
		"deleted": func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, path string) {
			if err := os.Truncate(path, 10); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, breakIt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, lg := openLogStore(t, dir, 5)
			appendTicks(t, lg, 30, "a")
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			breakIt(t, filepath.Join(dir, "archive.000001.jsonl"))

			s2, err := Open(dir, Options{LogLiveWindow: 5})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			MustLog(s2, "execlog")
			if err := s2.Load(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load with %s archive = %v, want ErrCorrupt", name, err)
			}
		})
	}
}

// TestArchiveCRCCorruption: bit rot inside an archive (same length, so
// the open-time existence check passes) surfaces as ErrCorrupt when
// the cold history is actually read.
func TestArchiveCRCCorruption(t *testing.T) {
	dir := t.TempDir()
	s, lg := openLogStore(t, dir, 5)
	appendTicks(t, lg, 40, "payload")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "archive.000001.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one character inside an entry's detail string: the JSON stays
	// well formed and the length unchanged — only the checksum can tell.
	i := bytes.Index(data, []byte("payload"))
	if i < 0 {
		t.Fatal("no payload byte to corrupt")
	}
	data[i] = 'q'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, lg2 := openLogStore(t, dir, 5) // lazy verification: open succeeds
	defer s2.Close()
	if _, err := lg2.Page(0, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Page over corrupt archive = %v, want ErrCorrupt", err)
	}
}

// TestFoldPolicyMinInterval: a seal poking the folder before the
// configured spacing has elapsed is deferred, not folded; once the
// interval passes the same poke folds.
func TestFoldPolicyMinInterval(t *testing.T) {
	fake := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	dir := t.TempDir()
	s, err := Open(dir, Options{FoldMinInterval: time.Minute, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lg := MustLog(s, "execlog")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}

	appendTicks(t, lg, 10, "a")
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.fold(false); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Engine.Folds; got != 1 {
		t.Fatalf("first fold: Folds = %d, want 1", got)
	}

	appendTicks(t, lg, 10, "b")
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.fold(false); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Engine.Folds != 1 || st.FoldPolicy.SkippedInterval != 1 {
		t.Fatalf("fold inside interval: Folds = %d, SkippedInterval = %d, want 1, 1",
			st.Engine.Folds, st.FoldPolicy.SkippedInterval)
	}

	fake.Advance(2 * time.Minute)
	if err := s.fold(false); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Engine.Folds; got != 2 {
		t.Fatalf("fold after interval: Folds = %d, want 2", got)
	}
}

// TestFoldPolicyMinGarbage: a sealed backlog that is a sliver of the
// installed snapshot is not worth a rewrite — the background fold
// skips it — but Compact is an operator order and folds anyway.
func TestFoldPolicyMinGarbage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FoldMinGarbage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		if err := repo.Put(fmt.Sprintf("k%03d", i), doc{Title: strings.Repeat("x", 64), Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	// No snapshot installed yet: the backlog is 100% garbage, folds.
	if err := s.fold(false); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Engine.Folds; got != 1 {
		t.Fatalf("first fold: Folds = %d, want 1", got)
	}

	if err := repo.Put("k000", doc{Title: "tiny", Rev: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.fold(false); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Engine.Folds != 1 || st.FoldPolicy.SkippedGarbage != 1 {
		t.Fatalf("fold below garbage floor: Folds = %d, SkippedGarbage = %d, want 1, 1",
			st.Engine.Folds, st.FoldPolicy.SkippedGarbage)
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Engine.Folds != 2 || st.FoldPolicy.Forced != 1 {
		t.Fatalf("Compact: Folds = %d, Forced = %d, want 2, 1", st.Engine.Folds, st.FoldPolicy.Forced)
	}
	got, ok := repo.Get("k000")
	if !ok || got.Rev != 1000 {
		t.Fatalf("k000 after forced fold = %+v, %t", got, ok)
	}
}

// TestStoreLoadParallelEquivalence: replaying the same journal with
// one worker and with eight must produce identical state — per-key
// entries share a lane, so parallelism never reorders what matters.
// The definitions-journal counterpart of Instances.ReplayParallel.
func TestStoreLoadParallelEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := MustRepo[doc](s, "docs")
	misc := MustRepo[doc](s, "misc")
	lg := MustLog(s, "execlog")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := docs.Put(fmt.Sprintf("k%02d", i%50), doc{Title: "v", Rev: i}); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := misc.Put(fmt.Sprintf("m%02d", i%20), doc{Rev: i}); err != nil {
				t.Fatal(err)
			}
		}
		if i%13 == 0 {
			if err := docs.Delete(fmt.Sprintf("k%02d", (i+3)%50)); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			if _, err := lg.Append(LogEntry{Instance: fmt.Sprintf("i%d", i%10), Kind: "t", Detail: fmt.Sprint(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	state := func(workers int) []byte {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		docs := MustRepo[doc](s, "docs")
		misc := MustRepo[doc](s, "misc")
		lg := MustLog(s, "execlog")
		if err := s.LoadParallel(workers); err != nil {
			t.Fatal(err)
		}
		dump := func(r *Repo[doc]) map[string]doc {
			out := make(map[string]doc)
			for _, id := range r.IDs() {
				v, _ := r.Get(id)
				out[id] = v
			}
			return out
		}
		data, err := json.Marshal(struct {
			Docs map[string]doc
			Misc map[string]doc
			Log  []LogEntry
		}{dump(docs), dump(misc), lg.All()})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	sequential := state(1)
	parallel := state(8)
	if !bytes.Equal(sequential, parallel) {
		t.Fatal("parallel replay state diverged from sequential")
	}
}

// TestRepoReadStats: Get traffic is counted per shard and the sampled
// space-saving sketch surfaces the dominant keys.
func TestRepoReadStats(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	repo := MustRepo[doc](s, "docs")
	if err := repo.Put("hot", doc{Title: "h"}); err != nil {
		t.Fatal(err)
	}
	if err := repo.Put("warm", doc{Title: "w"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		repo.Get("hot")
	}
	for i := 0; i < 8; i++ {
		repo.Get("warm")
	}
	for i := 0; i < 10; i++ {
		repo.Get("absent")
	}

	st, ok := s.Stats().Reads["docs"]
	if !ok {
		t.Fatal("no read stats for docs")
	}
	if st.Gets != 98 || st.Hits != 88 || st.Misses != 10 {
		t.Fatalf("read stats = %+v, want gets 98, hits 88, misses 10", st)
	}
	var hotCount uint64
	for _, hk := range st.HotKeys {
		if hk.ID == "hot" {
			hotCount = hk.Count
		}
	}
	if hotCount == 0 {
		t.Fatalf("hot key missing from sketch: %+v", st.HotKeys)
	}
	if st.HotKeys[0].ID != "hot" {
		t.Fatalf("dominant key = %q, want hot (%+v)", st.HotKeys[0].ID, st.HotKeys)
	}
}
