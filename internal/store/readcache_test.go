package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// versioned is the test value for cache-staleness checks: Version is
// monotone per key, so any reader observing a smaller version than the
// last acknowledged write has seen a stale cached decode.
type versioned struct {
	ID      string `json:"id"`
	Version int64  `json:"version"`
}

// cloneCount wraps a prepare function counting invocations — the
// cache's whole point is skipping prepare on hits.
func cloneCount(n *atomic.Int64) func(*versioned) *versioned {
	return func(v *versioned) *versioned {
		n.Add(1)
		c := *v
		return &c
	}
}

func TestReadCacheHitSkipsPrepare(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[*versioned](s, "vals")
	var clones atomic.Int64
	repo.EnableReadCache(8, cloneCount(&clones))
	if err := repo.Put("a", &versioned{ID: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, ok := repo.GetShared("a")
		if !ok || v.Version != 1 {
			t.Fatalf("GetShared = %+v, %v", v, ok)
		}
	}
	if got := clones.Load(); got != 1 {
		t.Fatalf("prepare ran %d times, want 1 (cached after first miss)", got)
	}
	st := repo.readStats()
	if st.CacheHits != 9 || st.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 9/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheSize != 1 || st.CacheCap != 8*len(repo.shards) {
		t.Fatalf("cache size/cap = %d/%d, want 1/%d", st.CacheSize, st.CacheCap, 8*len(repo.shards))
	}
	// Cached reads still count in the repo read stats.
	if st.Gets != 10 || st.Hits != 10 {
		t.Fatalf("gets/hits = %d/%d, want 10/10", st.Gets, st.Hits)
	}
}

func TestReadCachePutInvalidates(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[*versioned](s, "vals")
	repo.EnableReadCache(8, cloneCount(new(atomic.Int64)))
	for ver := int64(1); ver <= 5; ver++ {
		if err := repo.Put("a", &versioned{ID: "a", Version: ver}); err != nil {
			t.Fatal(err)
		}
		v, ok := repo.GetShared("a")
		if !ok || v.Version != ver {
			t.Fatalf("after Put v%d: GetShared = %+v, %v", ver, v, ok)
		}
		// Re-read: the refreshed value must be cached, not the old one.
		v, _ = repo.GetShared("a")
		if v.Version != ver {
			t.Fatalf("cached value is v%d, want v%d", v.Version, ver)
		}
	}
	if err := repo.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := repo.GetShared("a"); ok {
		t.Fatal("GetShared returned a value after Delete")
	}
}

func TestReadCacheLRUBound(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[*versioned](s, "vals")
	const capPerShard = 4
	repo.EnableReadCache(capPerShard, nil)
	// Load far more keys than the bound and read each once.
	const n = 400
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("k%03d", i)
		if err := repo.Put(id, &versioned{ID: id, Version: 1}); err != nil {
			t.Fatal(err)
		}
		repo.GetShared(id)
	}
	st := repo.readStats()
	bound := capPerShard * len(repo.shards)
	if st.CacheSize > bound {
		t.Fatalf("cache size %d exceeds bound %d", st.CacheSize, bound)
	}
	if st.CacheEvictions == 0 {
		t.Fatalf("no evictions recorded after %d inserts into bound %d", n, bound)
	}
	if st.CacheSize+int(st.CacheEvictions) != n {
		t.Fatalf("size %d + evictions %d != inserts %d", st.CacheSize, st.CacheEvictions, n)
	}
}

func TestReadCacheLRURecency(t *testing.T) {
	c := newReadCache[int](2)
	c.fill("a", 1, c.beginFill())
	c.fill("b", 2, c.beginFill())
	c.get("a") // promote a; b is now the LRU victim
	c.fill("c", 3, c.beginFill())
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently-read a was evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU b survived past capacity")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("newest c missing")
	}
}

// TestReadCacheEpochVoidsStaleFill pins the fill protocol: a fill whose
// epoch snapshot predates an invalidation must be discarded, otherwise
// a read that saw the map before a write could cache the old value
// after the write acked.
func TestReadCacheEpochVoidsStaleFill(t *testing.T) {
	c := newReadCache[int](4)
	epoch := c.beginFill()
	c.invalidate("a") // the write lands between map read and fill
	c.fill("a", 1, epoch)
	if _, ok := c.get("a"); ok {
		t.Fatal("stale fill survived an interleaved invalidation")
	}
	_, _, _, raced, _ := c.stats()
	if raced != 1 {
		t.Fatalf("raced = %d, want 1", raced)
	}
}

func TestReadCachePurge(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[*versioned](s, "vals")
	repo.EnableReadCache(8, nil)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("k%d", i)
		repo.Put(id, &versioned{ID: id, Version: 1})
		repo.GetShared(id)
	}
	s.PurgeReadCaches()
	if st := repo.readStats(); st.CacheSize != 0 {
		t.Fatalf("cache size %d after purge, want 0", st.CacheSize)
	}
	// And a purge voids in-flight fills like any invalidation.
	sh := repo.shardFor("k0")
	epoch := sh.cache.beginFill()
	sh.cache.purge()
	sh.cache.fill("k0", &versioned{ID: "k0", Version: 0}, epoch)
	if _, ok := sh.cache.get("k0"); ok {
		t.Fatal("fill with pre-purge epoch survived the purge")
	}
}

func TestGetSharedWithoutCache(t *testing.T) {
	s := NewMemory()
	repo := MustRepo[*versioned](s, "vals")
	var clones atomic.Int64
	repo.EnableReadCache(-1, cloneCount(&clones)) // disabled: prepare every call
	repo.Put("a", &versioned{ID: "a", Version: 7})
	for i := 0; i < 3; i++ {
		v, ok := repo.GetShared("a")
		if !ok || v.Version != 7 {
			t.Fatalf("GetShared = %+v, %v", v, ok)
		}
	}
	if got := clones.Load(); got != 3 {
		t.Fatalf("prepare ran %d times, want 3 (no cache)", got)
	}
	if st := repo.readStats(); st.CacheCap != 0 {
		t.Fatalf("CacheCap = %d with cache disabled, want 0", st.CacheCap)
	}
}

// TestReadCacheStaleness is the -race stress for the satellite
// acceptance bar: readers interleaved with writers, folds and seals
// must never observe a value older than the last acknowledged write to
// its key. The writer records each version as acknowledged *before*
// the Put returns is observable... specifically: the commit callback
// has run by the time Put returns, so a version is published to
// lastAcked only after Put returns; any subsequent GetShared must see
// at least that version.
func TestReadCacheStaleness(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentMaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[*versioned](s, "vals")
	repo.EnableReadCache(4, func(v *versioned) *versioned {
		c := *v
		return &c
	})
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const keys = 8
	lastAcked := make([]atomic.Int64, keys)
	keyID := func(k int) string { return fmt.Sprintf("key-%d", k) }
	for k := 0; k < keys; k++ {
		if err := repo.Put(keyID(k), &versioned{ID: keyID(k), Version: 1}); err != nil {
			t.Fatal(err)
		}
		lastAcked[k].Store(1)
	}

	stop := make(chan struct{})
	var fail atomic.Value // first failure message
	var wg sync.WaitGroup

	// Writer: bump versions round-robin, publish after ack.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ver := int64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ver++
			k := int(ver) % keys
			if err := repo.Put(keyID(k), &versioned{ID: keyID(k), Version: ver}); err != nil {
				fail.Store(fmt.Sprintf("put: %v", err))
				return
			}
			lastAcked[k].Store(ver)
		}
	}()

	// Folder: seal + fold concurrently (Compact = seal then fold).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := s.Compact(); err != nil {
				fail.Store(fmt.Sprintf("compact: %v", err))
				return
			}
		}
	}()

	// Readers: load the floor BEFORE the read; observed >= floor or the
	// cache served a value older than an acknowledged write.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % keys
				i++
				floor := lastAcked[k].Load()
				v, ok := repo.GetShared(keyID(k))
				if !ok {
					fail.Store(fmt.Sprintf("key %d vanished", k))
					return
				}
				if v.Version < floor {
					fail.Store(fmt.Sprintf("stale read: key %d version %d < acked %d", k, v.Version, floor))
					return
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	st := repo.readStats()
	if st.CacheHits == 0 {
		t.Fatal("stress never hit the cache — exercise is vacuous")
	}
	t.Logf("cache hits=%d misses=%d evictions=%d raced=%d", st.CacheHits, st.CacheMisses, st.CacheEvictions, st.CacheRaced)
}

// TestReadCacheRepairedDirServesRepairedState is the fsck -repair
// regression: a data directory that was repaired offline must serve
// the repaired (possibly rewound) state on reopen — the read cache is
// process-local, so a reopened store starts cold and cannot leak
// pre-repair decodes.
func TestReadCacheRepairedDirServesRepairedState(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Store, *Repo[*versioned]) {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		repo := MustRepo[*versioned](s, "vals")
		repo.EnableReadCache(8, nil)
		if err := s.Load(); err != nil {
			t.Fatal(err)
		}
		return s, repo
	}

	s, repo := open()
	if err := repo.Put("a", &versioned{ID: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := repo.Put("a", &versioned{ID: "a", Version: 2}); err != nil {
		t.Fatal(err)
	}
	if v, _ := repo.GetShared("a"); v.Version != 2 {
		t.Fatalf("pre-corruption version = %d, want 2", v.Version)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the tail of the active journal (the v2 record), then
	// repair offline: fsck truncates the torn tail, rewinding to v1.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("fsck repaired nothing: %+v", rep)
	}

	s2, repo2 := open()
	defer s2.Close()
	v, ok := repo2.GetShared("a")
	if !ok || v.Version != 1 {
		t.Fatalf("post-repair GetShared = %+v, %v; want version 1 (repaired state)", v, ok)
	}
}
