package store

import (
	"errors"
	"sync/atomic"
)

// Engine state names reported by EngineStats.State. An engine is
// running while it accepts appends, draining while a Close flushes the
// commit queue, and closed afterwards. Draining is first-class so that
// operators (and the admin endpoint) can observe a shutdown in flight.
const (
	StateRunning  = "running"
	StateDraining = "draining"
	StateClosed   = "closed"
)

// ErrClosed is returned by Append once an engine has begun draining.
var ErrClosed = errors.New("store: engine closed")

// EngineStats is a point-in-time health/throughput snapshot of a
// storage engine, exposed over the admin API.
type EngineStats struct {
	// Engine names the implementation ("journal", "memory").
	Engine string `json:"engine"`
	// State is running, draining or closed.
	State string `json:"state"`
	// LastSeq is the sequence number of the most recent committed entry.
	LastSeq uint64 `json:"last_seq"`
	// Appends counts entries committed since open.
	Appends uint64 `json:"appends"`
	// Batches counts group commits; Appends/Batches is the mean batch
	// size achieved. For the memory engine Batches == Appends.
	Batches uint64 `json:"batches"`
	// Syncs counts fsync calls (one per batch in durable mode).
	Syncs uint64 `json:"syncs"`
	// MaxBatch is the largest batch committed in one write+fsync.
	MaxBatch int `json:"max_batch"`
	// Pending is the number of appends queued but not yet committed.
	Pending int `json:"pending"`

	// Segment-rotation and snapshot-folding counters (zero for engines
	// without segments, like the memory engine).
	//
	// SealedSegments is the count of sealed segments not yet folded;
	// Rotations counts seals since open, Folds successful snapshot
	// folds, FoldErrors failed fold attempts, FoldedSegments segments
	// deleted by folds, and SnapshotEntries the size of the newest
	// snapshot. Replay reports what this open streamed — its
	// SnapshotEntries+TailEntries sum is the bounded restart cost.
	SealedSegments  int    `json:"sealed_segments,omitempty"`
	Rotations       uint64 `json:"rotations,omitempty"`
	Folds           uint64 `json:"folds,omitempty"`
	FoldErrors      uint64 `json:"fold_errors,omitempty"`
	FoldedSegments  uint64 `json:"folded_segments,omitempty"`
	SnapshotEntries int64  `json:"snapshot_entries,omitempty"`

	// Byte accounting for the fold pacing policy and the fold
	// benchmark. SealedBytes is the unfolded sealed backlog,
	// SnapshotBytes the newest snapshot's size, FoldBytesWritten the
	// cumulative bytes folds have written (snapshots + archives) —
	// the number the fold-by-reference optimization flattens.
	SealedBytes      int64  `json:"sealed_bytes,omitempty"`
	SnapshotBytes    int64  `json:"snapshot_bytes,omitempty"`
	FoldBytesWritten uint64 `json:"fold_bytes_written,omitempty"`

	// Archive counters: referenced cold-history files on disk, their
	// total size, how many this process wrote, and how many orphans
	// (written by a fold that crashed pre-install) open removed.
	Archives        int64  `json:"archives,omitempty"`
	ArchiveBytes    int64  `json:"archive_bytes,omitempty"`
	ArchivesWritten uint64 `json:"archives_written,omitempty"`
	OrphanArchives  uint64 `json:"orphan_archives,omitempty"`

	// Integrity is the corruption-detection ledger: framing mode, torn
	// tails recovered at open, corrupt/quarantined file counts, and the
	// background scrubber's progress.
	Integrity IntegrityStats `json:"integrity"`

	Replay ReplayStats `json:"replay"`
}

// Engine is the pluggable persistence layer behind a Store. A Store
// owns exactly one engine; repositories and logs never talk to it
// directly. Implementations must be safe for concurrent Append.
//
// Lifecycle: construct, Replay once (which also opens the engine for
// appending), Append/Seal/Fold freely, Close once. Append blocks until
// the entry is committed at the engine's durability level, so callers
// can treat a nil error as "survives a crash" for durable engines.
type Engine interface {
	// Replay streams every previously committed entry through fn in
	// commit order, then opens the engine for appending. It must be
	// called exactly once, before any Append.
	Replay(fn func(Entry) error) error
	// Append assigns the next sequence number to e, commits it, and
	// returns the assigned sequence once the commit is acknowledged.
	// onCommit, if non-nil, is invoked exactly once for a successful
	// append with the assigned sequence, in commit order with respect
	// to every other append's onCommit, after durability and before
	// Append returns — this is how callers keep in-memory state ordered
	// identically to the journal, so that crash recovery never surfaces
	// a value no live reader ever observed (the sequence is what lets
	// them record fold boundaries). onCommit must be fast and must not
	// call back into the engine.
	Append(e Entry, onCommit func(seq uint64)) (uint64, error)
	// Seal finishes the active journal segment so a following Fold can
	// compact it — an O(1) rename/create under the appender lock that
	// never blocks concurrent appends for more than that. A no-op when
	// the active segment is empty or the engine has no segments.
	Seal() error
	// Fold compacts every segment sealed before the call into a
	// snapshot of the live state and deletes them — the compaction
	// primitive, safe to run while appends proceed. build is invoked
	// once, after the fold boundary is fixed, with an Archiver the
	// image may spill cold history through (by-reference folding); it
	// must return the live-entry image plus an optional Commit hook the
	// engine runs only after the snapshot is durably installed (see
	// Store.foldImage). Engines without segments ignore build.
	// Callers serialize folds.
	Fold(build func(Archiver) FoldImage) error
	// ReadArchive streams one referenced archive file's entries through
	// fn, verifying its checksum when read to the end (fn may return
	// ErrStopScan to stop early). Engines without archive storage
	// return an error.
	ReadArchive(ref ArchiveRef, fn func(Entry) error) error
	// Scrub runs one bounded background-verification tick: up to
	// maxBytes (0 = DefaultScrubBytesPerTick) of sealed segments,
	// snapshots and archives re-checked against their CRCs and footers
	// while the engine serves. Detections are counted in
	// Stats().Integrity and reported through the configured OnCorrupt
	// hook; engines without durable files return zeros.
	Scrub(maxBytes int64) ScrubResult
	// Stats reports engine health and throughput counters.
	Stats() EngineStats
	// Depth is the number of appends queued but not yet committed — an
	// O(1) saturation signal for admission control, cheap enough to
	// sample per request.
	Depth() int
	// Close drains pending appends, flushes, and releases resources.
	// It is idempotent.
	Close() error
}

// memEngine is the no-persistence engine: appends only count and
// sequence. NewMemory stores and the "memory" engine option use it.
type memEngine struct {
	seq     atomic.Uint64
	appends atomic.Uint64
	closed  atomic.Bool
}

// NewMemoryEngine returns an Engine that persists nothing — every
// commit is acknowledged immediately. It backs in-memory stores and is
// the fallback when no data directory is configured.
func NewMemoryEngine() Engine { return &memEngine{} }

func (m *memEngine) Replay(fn func(Entry) error) error { return nil }

func (m *memEngine) Append(e Entry, onCommit func(uint64)) (uint64, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	m.appends.Add(1)
	seq := m.seq.Add(1)
	if onCommit != nil {
		onCommit(seq)
	}
	return seq, nil
}

// Seal implements Engine: nothing persisted, nothing to seal.
func (m *memEngine) Seal() error { return nil }

// Depth implements Engine: in-memory appends commit synchronously, so
// nothing ever queues.
func (m *memEngine) Depth() int { return 0 }

// Fold implements Engine: nothing persisted, nothing to fold. build is
// not invoked — there is no snapshot to write its image into.
func (m *memEngine) Fold(func(Archiver) FoldImage) error { return nil }

// ReadArchive implements Engine: the memory engine has no archive
// storage, so nothing can ever hold a ref to read.
func (m *memEngine) ReadArchive(ArchiveRef, func(Entry) error) error {
	return errors.New("store: memory engine has no archives")
}

// Scrub implements Engine: no durable files, nothing to verify.
func (m *memEngine) Scrub(int64) ScrubResult { return ScrubResult{} }

func (m *memEngine) Stats() EngineStats {
	state := StateRunning
	if m.closed.Load() {
		state = StateClosed
	}
	n := m.appends.Load()
	return EngineStats{
		Engine:  "memory",
		State:   state,
		LastSeq: m.seq.Load(),
		Appends: n,
		Batches: n,
	}
}

func (m *memEngine) Close() error {
	m.closed.Store(true)
	return nil
}
