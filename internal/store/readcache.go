package store

import "sync"

// readCache is one shard's bounded LRU of prepared (shareable) decoded
// values, sitting in front of the shard's items map for GetShared.
// Everything lives under one small mutex: a hit is a map lookup plus a
// list splice, both O(1), which on the measured hot path (~150ns) beats
// the defensive deep-clone it replaces (~1.7µs for a mid-size model) by
// an order of magnitude.
//
// Correctness against concurrent writes uses an epoch counter rather
// than holding the cache lock across the backing-map read: a fill
// snapshots the epoch (beginFill) before reading the map, and the
// insert is discarded if any invalidation bumped the epoch in between.
// Either the fill loses the race and is dropped, or the invalidation
// runs after the insert and deletes it — a stale value can never
// survive an acknowledged write. See the package doc ("Read cache").
type readCache[T any] struct {
	mu    sync.Mutex
	cap   int
	epoch uint64
	items map[string]*cacheNode[T]
	// Intrusive LRU list: head = most recently used, tail = next victim.
	head, tail *cacheNode[T]

	hits, misses, evicts, raced uint64
}

// cacheNode is one LRU entry; prev/next are the intrusive list links.
type cacheNode[T any] struct {
	id         string
	v          T
	prev, next *cacheNode[T]
}

func newReadCache[T any](capacity int) *readCache[T] {
	return &readCache[T]{
		cap:   capacity,
		items: make(map[string]*cacheNode[T], capacity),
	}
}

// unlink removes n from the LRU list (n must be linked).
func (c *readCache[T]) unlink(n *cacheNode[T]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront links n as most recently used.
func (c *readCache[T]) pushFront(n *cacheNode[T]) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// get returns the cached value for id, promoting it to MRU.
func (c *readCache[T]) get(id string) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.items[id]
	if !ok {
		c.misses++
		var zero T
		return zero, false
	}
	c.hits++
	if c.head != n {
		c.unlink(n)
		c.pushFront(n)
	}
	return n.v, true
}

// beginFill snapshots the shard epoch. The caller reads the backing map
// after this call and passes the snapshot back to fill; any concurrent
// invalidation in between bumps the epoch and voids the fill.
func (c *readCache[T]) beginFill() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// fill inserts a prepared value obtained under the epoch snapshot,
// evicting the LRU tail past capacity. A fill that lost a race with an
// invalidation is dropped (counted in raced): its value was read before
// the write it missed.
func (c *readCache[T]) fill(id string, v T, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		c.raced++
		return
	}
	if n, ok := c.items[id]; ok {
		// Concurrent fill of the same key already landed; same epoch
		// means same backing value, so just refresh recency.
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return
	}
	n := &cacheNode[T]{id: id, v: v}
	c.items[id] = n
	c.pushFront(n)
	if len(c.items) > c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.items, victim.id)
		c.evicts++
	}
}

// invalidate drops id (if cached) and voids every in-flight fill in the
// shard by bumping the epoch — the write-through hook for Put, Delete
// and replay.
func (c *readCache[T]) invalidate(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	if n, ok := c.items[id]; ok {
		c.unlink(n)
		delete(c.items, n.id)
	}
}

// purge empties the cache and voids in-flight fills — the quarantine /
// repair hook.
func (c *readCache[T]) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.items = make(map[string]*cacheNode[T], c.cap)
	c.head, c.tail = nil, nil
}

// stats returns the counters and current size under the lock.
func (c *readCache[T]) stats() (hits, misses, evicts, raced uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicts, c.raced, len(c.items)
}
