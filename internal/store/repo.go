package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Repo is a typed, journal-backed key/value repository. T must be JSON
// (de)serializable; pointers and structs both work. All operations are
// safe for concurrent use.
type Repo[T any] struct {
	name  string
	store *Store
	mu    sync.RWMutex
	items map[string]T
}

// NewRepo creates and registers a repository under name. It must be
// called before Store.Load so that replay can find it.
func NewRepo[T any](s *Store, name string) (*Repo[T], error) {
	r := &Repo[T]{name: name, store: s, items: make(map[string]T)}
	if err := s.register(name, r); err != nil {
		return nil, err
	}
	return r, nil
}

// MustRepo is NewRepo, panicking on duplicate registration — the wiring
// error is programmer-fatal.
func MustRepo[T any](s *Store, name string) *Repo[T] {
	r, err := NewRepo[T](s, name)
	if err != nil {
		panic(err)
	}
	return r
}

// Put stores v under id, overwriting any previous value, and journals
// the mutation.
func (r *Repo[T]) Put(id string, v T) error {
	if id == "" {
		return fmt.Errorf("store: %s: empty id", r.name)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %s: encode %q: %w", r.name, id, err)
	}
	if err := r.store.append(Entry{Repo: r.name, Op: OpPut, ID: id, Data: data}); err != nil {
		return err
	}
	r.mu.Lock()
	r.items[id] = v
	r.mu.Unlock()
	return nil
}

// Get returns the value stored under id.
func (r *Repo[T]) Get(id string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.items[id]
	return v, ok
}

// Delete removes id. Deleting a missing id is a no-op (and is not
// journaled).
func (r *Repo[T]) Delete(id string) error {
	r.mu.RLock()
	_, ok := r.items[id]
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	if err := r.store.append(Entry{Repo: r.name, Op: OpDelete, ID: id}); err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.items, id)
	r.mu.Unlock()
	return nil
}

// IDs returns all keys, sorted.
func (r *Repo[T]) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.items))
	for id := range r.items {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// List returns all values ordered by id.
func (r *Repo[T]) List() []T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.items))
	for id := range r.items {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]T, len(ids))
	for i, id := range ids {
		out[i] = r.items[id]
	}
	return out
}

// Len returns the number of stored values.
func (r *Repo[T]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.items)
}

// applyEntry implements journaled: replay a mutation during Load.
func (r *Repo[T]) applyEntry(e Entry) error {
	switch e.Op {
	case OpPut:
		var v T
		if err := json.Unmarshal(e.Data, &v); err != nil {
			return fmt.Errorf("store: %s: replay decode %q: %w", r.name, e.ID, err)
		}
		r.mu.Lock()
		r.items[e.ID] = v
		r.mu.Unlock()
	case OpDelete:
		r.mu.Lock()
		delete(r.items, e.ID)
		r.mu.Unlock()
	default:
		return fmt.Errorf("store: %s: replay unknown op %q", r.name, e.Op)
	}
	return nil
}

// snapshotEntries implements journaled: one put per live item.
func (r *Repo[T]) snapshotEntries() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.items))
	for id := range r.items {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Entry, 0, len(ids))
	for _, id := range ids {
		data, err := json.Marshal(r.items[id])
		if err != nil {
			continue // unencodable live value: skip from snapshot
		}
		out = append(out, Entry{Repo: r.name, Op: OpPut, ID: id, Data: data})
	}
	return out
}
