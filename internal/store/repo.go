package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/liquidpub/gelee/internal/shardkey"
)

// repoShard is one lock stripe of a repository: its own mutex, its own
// slice of the key space, plus read counters. gets/hits are atomics so
// the Get hot path never takes an extra lock; the hot-key sketch is
// sampled (one Get in hotSampleEvery) under its own small mutex.
type repoShard[T any] struct {
	mu    sync.RWMutex
	items map[string]T

	gets  atomic.Uint64
	hits  atomic.Uint64
	hotMu sync.Mutex
	hot   map[string]uint64 // space-saving top-k sketch of read keys

	// cache is the shard's LRU of prepared shared values (GetShared);
	// nil unless EnableReadCache was called. Invalidated write-through
	// on every mutation of this shard — see readcache.go.
	cache *readCache[T]
}

// noteRead records one read in the shard's counters and (sampled)
// hot-key sketch — shared by Get and the cache-hit path of GetShared so
// the admin read stats count cached reads too.
func (sh *repoShard[T]) noteRead(id string, hit bool) {
	n := sh.gets.Add(1)
	if hit {
		sh.hits.Add(1)
	}
	if n%hotSampleEvery == 0 {
		sh.noteHot(id)
	}
}

// invalidateCache drops id from the shard's read cache (and voids any
// in-flight fill). Called on every mutation path: live Put/Delete
// commit hooks and journal replay.
func (sh *repoShard[T]) invalidateCache(id string) {
	if sh.cache != nil {
		sh.cache.invalidate(id)
	}
}

// Hot-key sketch tuning: how many candidate keys each shard tracks
// (space-saving: a new key displaces the current minimum, inheriting
// its count) and the Get sampling stride that keeps the sketch off the
// hot path.
const (
	hotKeysPerShard = 8
	hotSampleEvery  = 8
)

// noteHot records one sampled read in the shard's space-saving sketch.
func (sh *repoShard[T]) noteHot(id string) {
	sh.hotMu.Lock()
	defer sh.hotMu.Unlock()
	if sh.hot == nil {
		sh.hot = make(map[string]uint64, hotKeysPerShard)
	}
	if _, ok := sh.hot[id]; ok {
		sh.hot[id]++
		return
	}
	if len(sh.hot) < hotKeysPerShard {
		sh.hot[id] = 1
		return
	}
	// Displace the current minimum; the newcomer inherits its count + 1
	// (the space-saving overestimate, bounded by the evicted count).
	var minID string
	var minN uint64
	first := true
	for k, n := range sh.hot {
		if first || n < minN {
			minID, minN, first = k, n, false
		}
	}
	delete(sh.hot, minID)
	sh.hot[id] = minN + 1
}

// HotKey is one entry of a repository's hot-key report.
type HotKey struct {
	ID    string `json:"id"`
	Count uint64 `json:"count"`
}

// RepoReadStats reports a repository's read traffic for the admin
// endpoint: total Gets, how many hit a live key, and the sampled
// hot-key sketch (approximate counts, dominant readers first) — the
// data grounding any future read-cache sizing.
type RepoReadStats struct {
	Gets    uint64   `json:"gets"`
	Hits    uint64   `json:"hits"`
	Misses  uint64   `json:"misses"`
	HotKeys []HotKey `json:"hot_keys,omitempty"`

	// Read-cache counters (EnableReadCache); all zero — and CacheCap
	// zero — when the cache is disabled. CacheHits/CacheMisses count
	// GetShared lookups against the LRU, CacheEvictions counts values
	// displaced by the per-shard bound, CacheRaced counts fills
	// discarded because a write landed mid-fill, CacheSize/CacheCap are
	// current and maximum entries summed across shards.
	CacheHits      uint64 `json:"cache_hits,omitempty"`
	CacheMisses    uint64 `json:"cache_misses,omitempty"`
	CacheEvictions uint64 `json:"cache_evictions,omitempty"`
	CacheRaced     uint64 `json:"cache_raced,omitempty"`
	CacheSize      int    `json:"cache_size,omitempty"`
	CacheCap       int    `json:"cache_cap,omitempty"`
}

// Repo is a typed, journal-backed key/value repository. T must be JSON
// (de)serializable; pointers and structs both work. All operations are
// safe for concurrent use: state is striped across the store's shard
// count so that writers to different resources never contend on a
// lock, and the journal write itself rides the engine's group commit.
type Repo[T any] struct {
	name   string
	store  *Store
	shards []*repoShard[T]

	// prepare converts a stored value into the immutable shared form
	// GetShared hands out (typically a deep clone for pointer types).
	// Set by EnableReadCache; nil means values are shared as stored.
	prepare func(T) T
	// cacheCap is the per-shard LRU bound (0 = cache disabled).
	cacheCap int
}

// EnableReadCache puts a bounded LRU of prepared shared values in front
// of this repository's GetShared path, entriesPerShard entries per lock
// stripe. prepare converts a stored value into the immutable form
// handed to callers (for pointer types, a deep clone — cached values
// are shared across callers and must never be mutated); nil shares the
// stored value directly. entriesPerShard <= 0 leaves the cache off
// (GetShared still works, preparing on every call).
//
// Must be called before the store is used concurrently (i.e. alongside
// NewRepo, before Load finishes); it is not synchronized against
// in-flight reads.
func (r *Repo[T]) EnableReadCache(entriesPerShard int, prepare func(T) T) {
	r.prepare = prepare
	if entriesPerShard <= 0 {
		return
	}
	r.cacheCap = entriesPerShard
	for _, sh := range r.shards {
		sh.cache = newReadCache[T](entriesPerShard)
	}
}

// NewRepo creates and registers a repository under name. It must be
// called before Store.Load so that replay can find it.
func NewRepo[T any](s *Store, name string) (*Repo[T], error) {
	n := s.numShards()
	r := &Repo[T]{name: name, store: s, shards: make([]*repoShard[T], n)}
	for i := range r.shards {
		r.shards[i] = &repoShard[T]{items: make(map[string]T)}
	}
	if err := s.register(name, r); err != nil {
		return nil, err
	}
	return r, nil
}

// MustRepo is NewRepo, panicking on duplicate registration — the wiring
// error is programmer-fatal.
func MustRepo[T any](s *Store, name string) *Repo[T] {
	r, err := NewRepo[T](s, name)
	if err != nil {
		panic(err)
	}
	return r
}

// shardFor hashes id onto a lock stripe. The inlined FNV-1a in
// shardkey keeps this allocation-free on the per-Get/Put hot path.
func (r *Repo[T]) shardFor(id string) *repoShard[T] {
	return r.shards[shardkey.Index(id, len(r.shards))]
}

// Put stores v under id, overwriting any previous value, and journals
// the mutation.
func (r *Repo[T]) Put(id string, v T) error {
	if id == "" {
		return fmt.Errorf("store: %s: empty id", r.name)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %s: encode %q: %w", r.name, id, err)
	}
	sh := r.shardFor(id)
	return r.store.commit(Entry{Repo: r.name, Op: OpPut, ID: id, Data: data}, func(uint64) {
		sh.mu.Lock()
		sh.items[id] = v
		sh.mu.Unlock()
		sh.invalidateCache(id)
	})
}

// Get returns the value stored under id. Read stats ride along: the
// counters are atomics and the hot-key sketch is only touched on a
// sampled fraction of calls, so the hot path stays one RLock deep.
func (r *Repo[T]) Get(id string) (T, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	v, ok := sh.items[id]
	sh.mu.RUnlock()
	sh.noteRead(id, ok)
	return v, ok
}

// GetShared returns the prepared, shareable form of the value under id
// — the read-cache hot path. The returned value may be handed to any
// number of concurrent callers and MUST NOT be mutated. With the cache
// enabled a hit skips the prepare step entirely (for clone-prepared
// pointer types that is the whole defensive-copy cost); a miss prepares
// once and caches the result under the epoch fill protocol, so a
// cached value can never outlive the record it was decoded from. With
// no cache this degrades to Get + prepare.
func (r *Repo[T]) GetShared(id string) (T, bool) {
	sh := r.shardFor(id)
	if c := sh.cache; c != nil {
		if v, ok := c.get(id); ok {
			sh.noteRead(id, true)
			return v, true
		}
		epoch := c.beginFill()
		sh.mu.RLock()
		v, ok := sh.items[id]
		sh.mu.RUnlock()
		sh.noteRead(id, ok)
		if !ok {
			var zero T
			return zero, false
		}
		if r.prepare != nil {
			v = r.prepare(v)
		}
		c.fill(id, v, epoch)
		return v, true
	}
	v, ok := r.Get(id)
	if !ok {
		var zero T
		return zero, false
	}
	if r.prepare != nil {
		v = r.prepare(v)
	}
	return v, true
}

// Delete removes id. Deleting a missing id is a no-op (and is not
// journaled).
func (r *Repo[T]) Delete(id string) error {
	sh := r.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.items[id]
	sh.mu.RUnlock()
	if !ok {
		return nil
	}
	return r.store.commit(Entry{Repo: r.name, Op: OpDelete, ID: id}, func(uint64) {
		sh.mu.Lock()
		delete(sh.items, id)
		sh.mu.Unlock()
		sh.invalidateCache(id)
	})
}

// ids collects every key across shards, unsorted.
func (r *Repo[T]) ids() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for id := range sh.items {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

// IDs returns all keys, sorted.
func (r *Repo[T]) IDs() []string {
	ids := r.ids()
	sort.Strings(ids)
	return ids
}

// kv is an (id, value) pair collected from a shard scan.
type kv[T any] struct {
	id string
	v  T
}

// pairs collects every (id, value) across shards in one pass per
// shard, sorted by id.
func (r *Repo[T]) pairs() []kv[T] {
	var out []kv[T]
	for _, sh := range r.shards {
		sh.mu.RLock()
		for id, v := range sh.items {
			out = append(out, kv[T]{id, v})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// List returns all values ordered by id.
func (r *Repo[T]) List() []T {
	pairs := r.pairs()
	out := make([]T, len(pairs))
	for i, p := range pairs {
		out[i] = p.v
	}
	return out
}

// Len returns the number of stored values.
func (r *Repo[T]) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.items)
		sh.mu.RUnlock()
	}
	return n
}

// size implements journaled.
func (r *Repo[T]) size() int { return r.Len() }

// applyEntry implements journaled: replay a mutation during Load.
func (r *Repo[T]) applyEntry(e Entry) error {
	sh := r.shardFor(e.ID)
	switch e.Op {
	case OpPut:
		var v T
		if err := json.Unmarshal(e.Data, &v); err != nil {
			return fmt.Errorf("store: %s: replay decode %q: %w", r.name, e.ID, err)
		}
		sh.mu.Lock()
		sh.items[e.ID] = v
		sh.mu.Unlock()
		sh.invalidateCache(e.ID)
	case OpDelete:
		sh.mu.Lock()
		delete(sh.items, e.ID)
		sh.mu.Unlock()
		sh.invalidateCache(e.ID)
	default:
		return fmt.Errorf("store: %s: replay unknown op %q", r.name, e.Op)
	}
	return nil
}

// PurgeReadCache empties every shard's read cache and voids in-flight
// fills (implements the store-wide PurgeReadCaches hook — quarantine,
// repair, anything that changes records out from under the decoded
// state). It takes only the per-shard cache locks, never the store
// mutex, so it is safe to call from inside integrity callbacks that
// fire while the store is loading.
func (r *Repo[T]) PurgeReadCache() {
	for _, sh := range r.shards {
		if sh.cache != nil {
			sh.cache.purge()
		}
	}
}

// foldEntries implements journaled: one put per live item, boundary 0.
// Repositories are keyed last-writer-wins, so replaying a folded tail
// entry over the fold image converges to the same value — no skip
// needed, which also spares the repo from tracking applied seqs across
// its lock stripes. The Archiver is unused: live state is already
// minimal, there is no cold history to spill.
func (r *Repo[T]) foldEntries(Archiver) ([]Entry, uint64, func()) {
	pairs := r.pairs()
	out := make([]Entry, 0, len(pairs))
	for _, p := range pairs {
		data, err := json.Marshal(p.v)
		if err != nil {
			continue // unencodable live value: skip from snapshot
		}
		out = append(out, Entry{Repo: r.name, Op: OpPut, ID: p.id, Data: data})
	}
	return out, 0, nil
}

// replayKey implements journaled: entries of different keys commute
// (separate map slots), so parallel replay lanes shard by ID.
func (r *Repo[T]) replayKey(e Entry) string { return e.ID }

// readStats merges the shards' read counters, cache counters and
// hot-key sketches.
func (r *Repo[T]) readStats() RepoReadStats {
	var st RepoReadStats
	merged := make(map[string]uint64)
	for _, sh := range r.shards {
		st.Gets += sh.gets.Load()
		st.Hits += sh.hits.Load()
		if sh.cache != nil {
			h, m, e, ra, size := sh.cache.stats()
			st.CacheHits += h
			st.CacheMisses += m
			st.CacheEvictions += e
			st.CacheRaced += ra
			st.CacheSize += size
			st.CacheCap += r.cacheCap
		}
		sh.hotMu.Lock()
		for k, n := range sh.hot {
			merged[k] += n
		}
		sh.hotMu.Unlock()
	}
	st.Misses = st.Gets - st.Hits
	if len(merged) > 0 {
		keys := make([]HotKey, 0, len(merged))
		for k, n := range merged {
			keys = append(keys, HotKey{ID: k, Count: n})
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Count != keys[j].Count {
				return keys[i].Count > keys[j].Count
			}
			return keys[i].ID < keys[j].ID
		})
		if len(keys) > hotKeysPerShard {
			keys = keys[:hotKeysPerShard]
		}
		st.HotKeys = keys
	}
	return st
}
