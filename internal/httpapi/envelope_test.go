package httpapi_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/scenario"
)

// rawGet issues a GET and returns status, headers and body.
func rawGet(t *testing.T, base, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestStructuredErrorsEveryRoute drives one failing request through
// every fallible route and asserts the uniform error body: JSON with
// a stable code, a message, and the deprecated "error" alias. Routes
// with no failing input (ping, the bare list/browse/summary/health
// reads) have nothing to assert; POST /soap answers with SOAP faults
// by protocol, not JSON.
func TestStructuredErrorsEveryRoute(t *testing.T) {
	e := newEnv(t, true) // auth on: missing X-Gelee-User is the uniform 401
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int // 0 = any 4xx/5xx
	}{
		{"define model unauthorized", "POST", "/api/v1/models", "<model/>", 401},
		{"model by query missing", "GET", "/api/v1/models/one?uri=urn:ghost", "", 404},
		{"model by path missing", "GET", "/api/v1/models/" + url.PathEscape("urn:ghost"), "", 404},
		{"propagate unauthorized", "POST", "/api/v1/models/propagate", "{}", 401},
		{"register action unauthorized", "POST", "/api/v1/actions", "{}", 401},
		{"instances bad state filter", "GET", "/api/v1/instances?state=bogus", "", 400},
		{"instances bad late filter", "GET", "/api/v1/instances?late=maybe", "", 400},
		{"instances bad cursor", "GET", "/api/v1/instances?after=x", "", 400},
		{"instantiate unauthorized", "POST", "/api/v1/instances", "{}", 401},
		{"instance missing", "GET", "/api/v1/instances/ghost", "", 404},
		{"instance timeline missing", "GET", "/api/v1/instances/ghost/timeline", "", 0},
		{"advance unauthorized", "POST", "/api/v1/instances/ghost/advance", "{}", 401},
		{"annotate unauthorized", "POST", "/api/v1/instances/ghost/annotations", "{}", 401},
		{"bind unauthorized", "POST", "/api/v1/instances/ghost/bindings", "{}", 401},
		{"migrate unauthorized", "POST", "/api/v1/instances/ghost/migrate", "{}", 401},
		{"callback bad body", "POST", "/api/v1/callbacks/ghost", "not json", 400},
		{"admin store unauthorized", "GET", "/api/v1/admin/store", "", 401},
		{"admin runtime unauthorized", "GET", "/api/v1/admin/runtime", "", 401},
		{"admin log unauthorized", "GET", "/api/v1/admin/log", "", 401},
		{"admin alerts unauthorized", "GET", "/api/v1/admin/alerts", "", 401},
		{"admin alert stream unauthorized", "GET", "/api/v1/admin/alerts/stream", "", 401},
		{"monitor overview bad filter", "GET", "/api/v1/monitor/overview?late=x", "", 400},
		{"monitor late bad filter", "GET", "/api/v1/monitor/late?state=bogus", "", 400},
		{"monitor timeline missing", "GET", "/api/v1/monitor/instances/ghost/timeline", "", 404},
		{"widget html missing", "GET", "/widgets/ghost", "", 0},
		{"widget json missing", "GET", "/widgets/ghost/json", "", 0},
		{"widget feed missing", "GET", "/widgets/ghost/feed", "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, e.srv.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if tc.want != 0 && resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
			if resp.StatusCode < 400 {
				t.Fatalf("status = %d, want an error (%s)", resp.StatusCode, data)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("error content type = %q, body %s", ct, data)
			}
			var apiErr struct {
				Code    string `json:"code"`
				Message string `json:"message"`
				Error   string `json:"error"` // deprecated alias
			}
			if err := json.Unmarshal(data, &apiErr); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, data)
			}
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("error body missing code/message: %s", data)
			}
			if apiErr.Error != apiErr.Message {
				t.Fatalf("deprecated error alias %q != message %q", apiErr.Error, apiErr.Message)
			}
		})
	}
}

// TestModelByPathRoute: models are addressed by path-escaped URI; the
// query-parameter route still answers but is marked deprecated.
func TestModelByPathRoute(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	if err := e.sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}

	code, hdr, body := rawGet(t, e.srv.URL, "/api/v1/models/"+url.PathEscape(model.URI))
	if code != 200 {
		t.Fatalf("GET by path = %d: %s", code, body)
	}
	if hdr.Get("Deprecation") != "" {
		t.Fatal("path route must not be marked deprecated")
	}
	var view map[string]any
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view["URI"] != model.URI {
		t.Fatalf("path route returned %v", view["URI"])
	}

	// XML round-trip works on the path route too.
	code, _, body = rawGet(t, e.srv.URL, "/api/v1/models/"+url.PathEscape(model.URI)+"?format=xml")
	if code != 200 || !bytes.Contains(body, []byte("<")) {
		t.Fatalf("XML by path = %d: %s", code, body)
	}

	// The legacy query route still works, flagged Deprecation: true.
	code, hdr, _ = rawGet(t, e.srv.URL, "/api/v1/models/one?uri="+url.QueryEscape(model.URI))
	if code != 200 {
		t.Fatalf("GET models/one = %d", code)
	}
	if hdr.Get("Deprecation") != "true" {
		t.Fatal("models/one must carry Deprecation: true")
	}
}

// TestInstancesEnvelopeAndFilters: any filter or paging parameter on
// GET /instances switches to the uniform {items,total,next_after}
// envelope (with the deprecated instances alias), and the filter
// params are pushed down to the runtime indexes.
func TestInstancesEnvelopeAndFilters(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	if err := e.sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	e.sys.Sims.GDocs.Create("D2.1", "Requirements", "owner", "draft")
	for i := 0; i < 4; i++ {
		if _, err := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://docs.liquidpub.org/docs/D2.1", Type: "gdoc"}, "owner", nil); err != nil {
			t.Fatal(err)
		}
	}

	type page struct {
		Items     []instanceJSON `json:"items"`
		Total     int            `json:"total"`
		NextAfter int64          `json:"next_after"`
		Instances []instanceJSON `json:"instances"` // deprecated alias
	}

	// Resource filter rides the by-resource index: match count as total.
	code, hdr, body := rawGet(t, e.srv.URL, "/api/v1/instances?resource="+url.QueryEscape("http://wiki/D1.1"))
	if code != 200 {
		t.Fatalf("filtered list = %d: %s", code, body)
	}
	var p page
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Items) != 4 || p.Total != 4 {
		t.Fatalf("resource filter: %d items, total %d, want 4/4", len(p.Items), p.Total)
	}
	if len(p.Instances) != len(p.Items) {
		t.Fatalf("instances alias = %d, items = %d", len(p.Instances), len(p.Items))
	}
	if hdr.Get("Deprecation") != "true" {
		t.Fatal("alias-carrying envelope must announce Deprecation: true")
	}

	// Filters compose with paging: walk the gdoc matches two at a time.
	var walked int
	after := int64(0)
	for {
		code, _, body := rawGet(t, e.srv.URL,
			fmt.Sprintf("/api/v1/instances?resource=%s&after=%d&limit=2",
				url.QueryEscape("http://docs.liquidpub.org/docs/D2.1"), after))
		if code != 200 {
			t.Fatalf("filtered page = %d", code)
		}
		var fp page
		if err := json.Unmarshal(body, &fp); err != nil {
			t.Fatal(err)
		}
		walked += len(fp.Items)
		if fp.NextAfter == 0 {
			break
		}
		after = fp.NextAfter
	}
	if walked != 3 {
		t.Fatalf("filtered walk saw %d instances, want 3", walked)
	}

	// Model + state filters: everything here is active.
	code, _, body = rawGet(t, e.srv.URL, "/api/v1/instances?model="+url.QueryEscape(model.URI)+"&state=active")
	if code != 200 {
		t.Fatalf("model filter = %d", code)
	}
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Items) != 7 {
		t.Fatalf("model+state filter: %d items, want 7", len(p.Items))
	}
	code, _, body = rawGet(t, e.srv.URL, "/api/v1/instances?state=completed")
	if code != 200 {
		t.Fatalf("state filter = %d", code)
	}
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Items) != 0 {
		t.Fatalf("completed filter: %d items, want 0", len(p.Items))
	}

	// Monitor overview takes the same pushdown params.
	code, _, body = rawGet(t, e.srv.URL, "/api/v1/monitor/overview?resource="+url.QueryEscape("http://wiki/D1.1"))
	if code != 200 {
		t.Fatalf("filtered overview = %d", code)
	}
	var rows []map[string]any
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("filtered overview rows = %d, want 4", len(rows))
	}
	// No instance is late yet.
	code, _, body = rawGet(t, e.srv.URL, "/api/v1/monitor/late?resource="+url.QueryEscape("http://wiki/D1.1"))
	if code != 200 {
		t.Fatalf("filtered late = %d", code)
	}
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("late rows = %d, want 0", len(rows))
	}

	// The bare parameterless call keeps the legacy array for one release.
	code, _, body = rawGet(t, e.srv.URL, "/api/v1/instances")
	if code != 200 {
		t.Fatalf("bare list = %d", code)
	}
	var flat []instanceJSON
	if err := json.Unmarshal(body, &flat); err != nil {
		t.Fatalf("bare list is no longer an array: %v (%s)", err, body[:min(len(body), 80)])
	}
	if len(flat) != 7 {
		t.Fatalf("bare list = %d instances, want 7", len(flat))
	}
}
