package httpapi

import (
	"encoding/xml"
	"fmt"
	"io"
	"net/http"

	"github.com/liquidpub/gelee/internal/runtime"
)

// The SOAP subset: the two operations the execution widgets of the
// paper's prototype issue against the lifecycle manager — getInstance
// (poll state) and advance (move the token). Both travel in SOAP 1.1
// envelopes under the urn:gelee:lifecycle namespace; errors come back
// as standard SOAP Faults.

type soapEnvelopeIn struct {
	XMLName xml.Name   `xml:"Envelope"`
	Body    soapBodyIn `xml:"Body"`
}

type soapBodyIn struct {
	Advance     *soapAdvance     `xml:"urn:gelee:lifecycle advance"`
	GetInstance *soapGetInstance `xml:"urn:gelee:lifecycle getInstance"`
}

type soapAdvance struct {
	InstanceID string `xml:"instanceId"`
	To         string `xml:"to"`
	Actor      string `xml:"actor"`
	Annotation string `xml:"annotation"`
}

type soapGetInstance struct {
	InstanceID string `xml:"instanceId"`
}

type soapEnvelopeOut struct {
	XMLName xml.Name    `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    soapBodyOut `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type soapBodyOut struct {
	Instance *soapInstance `xml:"urn:gelee:lifecycle instanceState,omitempty"`
	Fault    *soapFault    `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault,omitempty"`
}

type soapInstance struct {
	ID        string   `xml:"id"`
	ModelName string   `xml:"modelName"`
	State     string   `xml:"state"`
	Current   string   `xml:"current"`
	Suggested []string `xml:"suggested>phase"`
}

type soapFault struct {
	Code   string `xml:"faultcode"`
	String string `xml:"faultstring"`
}

// toSOAPInstance builds the wire view from the lightweight summary:
// SOAP clients only poll identity, state and suggested moves, so the
// runtime never deep-copies a history for them.
func toSOAPInstance(s runtime.Summary) *soapInstance {
	return &soapInstance{
		ID:        s.ID,
		ModelName: s.ModelName,
		State:     string(s.State),
		Current:   s.Current,
		Suggested: s.NextSuggested,
	}
}

func writeSOAP(w http.ResponseWriter, status int, body soapBodyOut) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	out, err := xml.MarshalIndent(soapEnvelopeOut{Body: body}, "", "  ")
	if err != nil {
		return
	}
	w.Write([]byte(xml.Header))
	w.Write(out)
}

func soapFaultOut(w http.ResponseWriter, code, msg string) {
	// SOAP 1.1 carries faults with HTTP 500.
	writeSOAP(w, http.StatusInternalServerError, soapBodyOut{Fault: &soapFault{Code: code, String: msg}})
}

func (s *Server) handleSOAP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		soapFaultOut(w, "soap:Client", err.Error())
		return
	}
	var env soapEnvelopeIn
	if err := xml.Unmarshal(body, &env); err != nil {
		soapFaultOut(w, "soap:Client", fmt.Sprintf("malformed envelope: %v", err))
		return
	}
	switch {
	case env.Body.Advance != nil:
		// advance mutates, so it passes the same resilience gate as
		// the REST routes; SOAP 1.1 carries the rejection as a Fault.
		if err := s.b.AdmitMutation(); err != nil {
			soapFaultOut(w, "soap:Server", err.Error())
			return
		}
		op := env.Body.Advance
		actor := op.Actor
		if actor == "" {
			actor = s.user(r)
		}
		if s.opts.RequireAuth && (actor == "" || !s.b.UserExists(actor)) {
			soapFaultOut(w, "soap:Client", "missing or unknown actor")
			return
		}
		res, err := s.b.AdvanceSummary(op.InstanceID, op.To, actor, runtime.AdvanceOptions{Annotation: op.Annotation})
		if err != nil {
			soapFaultOut(w, "soap:Server", err.Error())
			return
		}
		writeSOAP(w, http.StatusOK, soapBodyOut{Instance: toSOAPInstance(res.Summary)})
	case env.Body.GetInstance != nil:
		sum, ok := s.b.InstanceSummary(env.Body.GetInstance.InstanceID)
		if !ok {
			soapFaultOut(w, "soap:Server", "no such instance")
			return
		}
		writeSOAP(w, http.StatusOK, soapBodyOut{Instance: toSOAPInstance(sum)})
	default:
		soapFaultOut(w, "soap:Client", "unknown operation (want advance or getInstance)")
	}
}
