// These tests drive the full Fig. 2 architecture over the wire: REST
// design-time and run-time APIs, the Fig. 3 action browse, callbacks,
// the monitoring cockpit, Fig. 4 widgets, and the SOAP subset — using a
// real gelee.System with the embedded plug-in suite as the backend.
package httpapi_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/httpapi"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
	"github.com/liquidpub/gelee/internal/xmlcodec"
)

type env struct {
	sys   *gelee.System
	srv   *httptest.Server
	clock *vclock.Fake
}

func newEnv(t *testing.T, auth bool) *env {
	t.Helper()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys, err := gelee.New(gelee.Options{
		Clock:           clock,
		EmbeddedPlugins: true,
		SyncActions:     true,
		Auth:            auth,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.HTTPHandler())
	t.Cleanup(func() { srv.Close(); sys.Close() })
	return &env{sys: sys, srv: srv, clock: clock}
}

// call issues a JSON request and decodes the JSON response into out
// (which may be nil).
func (e *env) call(t *testing.T, method, path, user string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, e.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if user != "" {
		req.Header.Set(httpapi.UserHeader, user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

type instanceJSON struct {
	ID            string   `json:"id"`
	State         string   `json:"state"`
	Current       string   `json:"current"`
	NextSuggested []string `json:"next_suggested"`
	Pending       string   `json:"pending_change"`
	Executions    []struct {
		ActionURI  string `json:"action_uri"`
		LastStatus string `json:"last_status"`
		Terminal   bool   `json:"terminal"`
	} `json:"executions"`
}

func TestPing(t *testing.T) {
	e := newEnv(t, false)
	var out map[string]string
	if code := e.call(t, "GET", "/api/v1/ping", "", nil, &out); code != 200 {
		t.Fatalf("ping = %d", code)
	}
	if out["gelee"] != "ok" {
		t.Fatalf("ping body = %v", out)
	}
}

// TestFig2EndToEnd is experiment E4: define a model with Table I XML,
// instantiate it on a simulated document over REST, advance through the
// lifecycle, watch actions execute and callbacks land, read the
// execution history.
func TestFig2EndToEnd(t *testing.T) {
	e := newEnv(t, false)

	// 1. Design time: POST the Table I XML document.
	model := scenario.QualityPlan()
	xmlDoc, err := xmlcodec.MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", e.srv.URL+"/api/v1/models", bytes.NewReader(xmlDoc))
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("define model = %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	// The stored model round-trips back as Table I XML.
	resp, err = http.Get(e.srv.URL + "/api/v1/models/one?uri=" + model.URI + "&format=xml")
	if err != nil {
		t.Fatal(err)
	}
	back, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m2, err := xmlcodec.UnmarshalModel(back)
	if err != nil {
		t.Fatalf("returned XML invalid: %v", err)
	}
	if m2.Fingerprint() != model.Fingerprint() {
		t.Fatal("model drifted across the API")
	}

	// 2. Create the managed resource in the simulated service.
	e.sys.Sims.GDocs.Create("D2.1", "Requirements Analysis", "epfl-lead", "draft")

	// 3. Run time: instantiate over REST.
	var inst instanceJSON
	code := e.call(t, "POST", "/api/v1/instances", "epfl-lead", map[string]any{
		"model_uri": model.URI,
		"resource":  map[string]string{"uri": "http://docs.liquidpub.org/docs/D2.1", "type": "gdoc"},
		"owner":     "epfl-lead",
		"bindings": map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "unitn-reviewer"},
		},
	}, &inst)
	if code != http.StatusCreated {
		t.Fatalf("instantiate = %d", code)
	}
	if inst.Current != "" || inst.State != "active" {
		t.Fatalf("fresh instance = %+v", inst)
	}

	// 4. Advance through the whole lifecycle.
	for _, phase := range scenario.HappyPath {
		body := map[string]any{"to": phase}
		if phase == "publication" {
			body["bindings"] = map[string]map[string]string{
				"http://www.liquidpub.org/a/post": {"site": "project.liquidpub.org"},
			}
		}
		var out instanceJSON
		if code := e.call(t, "POST", "/api/v1/instances/"+inst.ID+"/advance", "epfl-lead", body, &out); code != 200 {
			t.Fatalf("advance %s = %d", phase, code)
		}
		if out.Current != phase {
			t.Fatalf("current = %q after advancing to %q", out.Current, phase)
		}
	}

	// 5. Final state: completed, all actions terminal-completed.
	var final instanceJSON
	e.call(t, "GET", "/api/v1/instances/"+inst.ID, "", nil, &final)
	if final.State != "completed" {
		t.Fatalf("state = %s", final.State)
	}
	if len(final.Executions) == 0 {
		t.Fatal("no executions recorded")
	}
	for _, ex := range final.Executions {
		if !ex.Terminal || ex.LastStatus != "completed" {
			t.Fatalf("execution %+v", ex)
		}
	}

	// 6. The document itself changed: published documents are public.
	doc, _ := e.sys.Sims.GDocs.Get("D2.1")
	if doc.Mode != "public" {
		t.Fatalf("document mode = %s", doc.Mode)
	}

	// 7. The cockpit saw everything — via the uniform page envelope.
	var tl struct {
		Items   []map[string]any `json:"items"`
		Entries []map[string]any `json:"entries"` // deprecated alias
		Total   int              `json:"total"`
	}
	if code := e.call(t, "GET", "/api/v1/monitor/instances/"+inst.ID+"/timeline", "", nil, &tl); code != 200 {
		t.Fatalf("timeline = %d", code)
	}
	if len(tl.Items) < 8 || tl.Total != len(tl.Items) {
		t.Fatalf("timeline items = %d, total = %d", len(tl.Items), tl.Total)
	}
	if len(tl.Entries) != len(tl.Items) {
		t.Fatalf("deprecated entries alias = %d items, want %d", len(tl.Entries), len(tl.Items))
	}
}

func TestFig3ActionBrowse(t *testing.T) {
	e := newEnv(t, false)
	var all []map[string]any
	e.call(t, "GET", "/api/v1/actions", "", nil, &all)
	var svnOnly []map[string]any
	e.call(t, "GET", "/api/v1/actions?resource_type=svn", "", nil, &svnOnly)
	if len(all) <= len(svnOnly) {
		t.Fatalf("design browse (%d) should exceed svn runtime browse (%d)", len(all), len(svnOnly))
	}
	if len(svnOnly) != 3 {
		t.Fatalf("svn actions = %d, want 3", len(svnOnly))
	}
}

func TestRegisterActionOverAPI(t *testing.T) {
	e := newEnv(t, false)
	// JSON form with implementations.
	code := e.call(t, "POST", "/api/v1/actions", "", map[string]any{
		"type": map[string]any{"URI": "urn:custom:archive", "Name": "Archive"},
		"implementations": []map[string]any{
			{"ResourceType": "gdoc", "Endpoint": "http://archiver/act", "Protocol": "rest"},
		},
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}
	var gdocActions []map[string]any
	e.call(t, "GET", "/api/v1/actions?resource_type=gdoc", "", nil, &gdocActions)
	found := false
	for _, a := range gdocActions {
		if a["URI"] == "urn:custom:archive" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered action not browsable")
	}

	// Table II XML form.
	xmlBody := `<action_type uri="urn:custom:stamp"><name>Stamp</name>
	  <parameters><param bindingTime="call" required="yes"><name>seal</name><value></value></param></parameters>
	</action_type>`
	req, _ := http.NewRequest("POST", e.srv.URL+"/api/v1/actions", strings.NewReader(xmlBody))
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("XML register = %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()
}

func TestDeviationAndMigrationOverAPI(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")

	var inst instanceJSON
	e.call(t, "POST", "/api/v1/instances", "owner", map[string]any{
		"model_uri": model.URI,
		"resource":  map[string]string{"uri": "http://wiki/D1.1", "type": "mediawiki"},
		"owner":     "owner",
	}, &inst)

	// Deviation with annotation.
	var out instanceJSON
	e.call(t, "POST", "/api/v1/instances/"+inst.ID+"/advance", "owner",
		map[string]any{"to": "eureview", "annotation": "skipping everything, deadline"}, &out)
	if out.Current != "eureview" {
		t.Fatalf("current = %q", out.Current)
	}

	// Propagate a model change, then reject it over the API.
	v2 := model.Clone()
	v2.Version.Number = "2.0"
	v2.Phases = append(v2.Phases, &gelee.Phase{ID: "archival", Name: "Archival"})
	data, _ := json.Marshal(v2)
	req, _ := http.NewRequest("POST", e.srv.URL+"/api/v1/models/propagate?note=archive", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var prop map[string]int
	json.NewDecoder(resp.Body).Decode(&prop)
	resp.Body.Close()
	if prop["proposed_to"] != 1 {
		t.Fatalf("propagate = %v", prop)
	}
	var got instanceJSON
	e.call(t, "GET", "/api/v1/instances/"+inst.ID, "", nil, &got)
	if got.Pending == "" {
		t.Fatal("pending change missing")
	}
	if code := e.call(t, "POST", "/api/v1/instances/"+inst.ID+"/migrate", "owner",
		map[string]any{"decision": "reject", "note": "not now"}, nil); code != 200 {
		t.Fatalf("reject = %d", code)
	}
	var after instanceJSON
	e.call(t, "GET", "/api/v1/instances/"+inst.ID, "", nil, &after)
	if after.Pending != "" {
		t.Fatal("pending survived rejection")
	}
	// Bad decision value.
	if code := e.call(t, "POST", "/api/v1/instances/"+inst.ID+"/migrate", "owner",
		map[string]any{"decision": "maybe"}, nil); code != 400 {
		t.Fatalf("bad decision = %d", code)
	}
}

func TestCallbackEndpoint(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, err := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	e.sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})
	e.sys.Advance(snap.ID, "internalreview", "owner", gelee.AdvanceOptions{
		CallBindings: map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "r1"},
		},
	})
	got, _ := e.sys.Instance(snap.ID)
	inv := got.Executions[0].InvocationID

	// Late duplicate callback over HTTP: accepted, idempotent.
	body := fmt.Sprintf(`{"invocation_id":%q,"message":"completed","detail":"late dup"}`, inv)
	resp, err := http.Post(e.srv.URL+"/api/v1/callbacks/"+inv, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("callback = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Mismatched path/body ids rejected.
	resp, _ = http.Post(e.srv.URL+"/api/v1/callbacks/inv-000042", "application/json", strings.NewReader(body))
	if resp.StatusCode != 400 {
		t.Fatalf("mismatch = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown invocation 404s.
	resp, _ = http.Post(e.srv.URL+"/api/v1/callbacks/inv-999999", "application/json",
		strings.NewReader(`{"invocation_id":"inv-999999","message":"completed"}`))
	if resp.StatusCode != 404 {
		t.Fatalf("unknown = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestAdvanceResponseModes pins the copy-free default of the advance
// endpoint — summary fields plus only the appended events — and the
// ?full=1 escape back to the full history snapshot.
func TestAdvanceResponseModes(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, _ := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	e.sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})

	type advResp struct {
		instanceJSON
		Events []struct {
			Seq  int    `json:"seq"`
			Kind string `json:"kind"`
		} `json:"events"`
	}

	// Default: summary mode. internalreview dispatches two actions, so
	// this move appends phase-entered + two action events — and nothing
	// from the prior history.
	var out advResp
	if code := e.call(t, "POST", "/api/v1/instances/"+snap.ID+"/advance", "owner",
		map[string]any{"to": "internalreview"}, &out); code != 200 {
		t.Fatalf("advance = %d", code)
	}
	if out.Current != "internalreview" || out.State != "active" {
		t.Fatalf("summary response = %+v", out.instanceJSON)
	}
	if len(out.Executions) != 0 {
		t.Fatalf("summary mode carried %d executions", len(out.Executions))
	}
	if len(out.Events) != 3 {
		t.Fatalf("appended events = %d, want 3 (phase-entered + 2 actions)", len(out.Events))
	}
	if out.Events[0].Kind != "phase-entered" {
		t.Fatalf("first appended = %+v", out.Events[0])
	}
	// Seqs continue the instance history (created + phase-entered came
	// before), proving these are EventsSince(pre-move seq).
	if out.Events[0].Seq != 3 {
		t.Fatalf("first appended seq = %d", out.Events[0].Seq)
	}

	// ?full=1: the old shape, full history and executions.
	var full advResp
	if code := e.call(t, "POST", "/api/v1/instances/"+snap.ID+"/advance?full=1", "owner",
		map[string]any{"to": "finalassembly"}, &full); code != 200 {
		t.Fatalf("advance full = %d", code)
	}
	if len(full.Executions) == 0 {
		t.Fatal("full mode lost executions")
	}
	if len(full.Events) < 6 || full.Events[0].Seq != 1 {
		t.Fatalf("full mode events = %d starting at %d", len(full.Events), full.Events[0].Seq)
	}
}

func TestInstanceTimelinePaging(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, _ := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	e.sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})
	for i := 0; i < 8; i++ {
		e.sys.Annotate(snap.ID, "owner", "note")
	}

	type pageResp struct {
		Entries []struct {
			Seq int `json:"seq"`
		} `json:"entries"`
		Total     int  `json:"total"`
		OldestSeq int  `json:"oldest_seq"`
		Truncated bool `json:"truncated"`
		NextAfter int  `json:"next_after"`
	}
	var page pageResp
	if code := e.call(t, "GET", "/api/v1/instances/"+snap.ID+"/timeline?after=2&limit=3", "", nil, &page); code != 200 {
		t.Fatalf("timeline = %d", code)
	}
	if page.Total != 10 || len(page.Entries) != 3 || page.Entries[0].Seq != 3 || page.NextAfter != 5 {
		t.Fatalf("page = %+v", page)
	}
	// Defaults: whole history.
	page = pageResp{}
	e.call(t, "GET", "/api/v1/instances/"+snap.ID+"/timeline", "", nil, &page)
	if len(page.Entries) != 10 || page.NextAfter != 0 || page.Truncated {
		t.Fatalf("full page = %+v", page)
	}
	// Past the tail.
	page = pageResp{}
	e.call(t, "GET", "/api/v1/instances/"+snap.ID+"/timeline?after=50", "", nil, &page)
	if len(page.Entries) != 0 || page.Total != 10 {
		t.Fatalf("past-tail page = %+v", page)
	}
	// Errors: bad params and a missing instance.
	if code := e.call(t, "GET", "/api/v1/instances/"+snap.ID+"/timeline?after=-1", "", nil, nil); code != 400 {
		t.Fatalf("negative after = %d", code)
	}
	if code := e.call(t, "GET", "/api/v1/instances/"+snap.ID+"/timeline?limit=x", "", nil, nil); code != 400 {
		t.Fatalf("bad limit = %d", code)
	}
	if code := e.call(t, "GET", "/api/v1/instances/ghost/timeline", "", nil, nil); code != 404 {
		t.Fatalf("ghost timeline = %d", code)
	}
}

func TestAdminRuntimeReadPathCounters(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, _ := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	e.sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})

	var stats struct {
		EventsInMemory  int64 `json:"events_in_memory"`
		EventsTruncated int64 `json:"events_truncated"`
		InvocationsGCed int64 `json:"invocation_index_gced"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/runtime", "", nil, &stats); code != 200 {
		t.Fatalf("admin runtime = %d", code)
	}
	if stats.EventsInMemory < 2 {
		t.Fatalf("events_in_memory = %d", stats.EventsInMemory)
	}
	if stats.EventsTruncated != 0 || stats.InvocationsGCed != 0 {
		t.Fatalf("truncated=%d gced=%d on a fresh untruncated system",
			stats.EventsTruncated, stats.InvocationsGCed)
	}
}

func TestMonitorEndpoints(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("D1.%d", i+1)
		e.sys.Sims.Wiki.CreatePage(id, "o", "x")
		snap, _ := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/" + id, Type: "mediawiki"}, "owner", nil)
		e.sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})
	}
	var sum struct {
		Total   int            `json:"total"`
		Active  int            `json:"active"`
		ByPhase map[string]int `json:"by_phase"`
	}
	e.call(t, "GET", "/api/v1/monitor/summary", "", nil, &sum)
	if sum.Total != 3 || sum.Active != 3 || sum.ByPhase["Elaboration"] != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	var rows []map[string]any
	e.call(t, "GET", "/api/v1/monitor/overview", "", nil, &rows)
	if len(rows) != 3 {
		t.Fatalf("overview = %d rows", len(rows))
	}
	e.clock.Advance(31 * 24 * time.Hour)
	var late []map[string]any
	e.call(t, "GET", "/api/v1/monitor/late", "", nil, &late)
	if len(late) != 3 {
		t.Fatalf("late = %d rows", len(late))
	}
	if code := e.call(t, "GET", "/api/v1/monitor/instances/ghost/timeline", "", nil, nil); code != 404 {
		t.Fatalf("ghost timeline = %d", code)
	}
}

func TestWidgetEndpoints(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, _ := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	e.sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})

	resp, err := http.Get(e.srv.URL + "/widgets/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(html), "gelee-widget") {
		t.Fatalf("widget HTML = %d:\n%s", resp.StatusCode, html)
	}
	var view map[string]any
	if code := e.call(t, "GET", "/widgets/"+snap.ID+"/json", "", nil, &view); code != 200 {
		t.Fatalf("widget JSON = %d", code)
	}
	if view["current"] != "elaboration" {
		t.Fatalf("view = %v", view)
	}
	resp, _ = http.Get(e.srv.URL + "/widgets/" + snap.ID + "/feed")
	feed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(feed), "<rss") {
		t.Fatalf("feed = %s", feed)
	}
	resp, _ = http.Get(e.srv.URL + "/widgets/ghost")
	if resp.StatusCode != 404 {
		t.Fatalf("ghost widget = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSOAPAdvanceAndGet(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, _ := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)

	envelope := fmt.Sprintf(`<?xml version="1.0"?>
	<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body>
	  <advance xmlns="urn:gelee:lifecycle">
	    <instanceId>%s</instanceId><to>elaboration</to><actor>owner</actor>
	  </advance>
	</Body></Envelope>`, snap.ID)
	resp, err := http.Post(e.srv.URL+"/soap", "text/xml", strings.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("SOAP advance = %d: %s", resp.StatusCode, body)
	}
	s := string(body)
	for _, want := range []string{"instanceState", "<current>elaboration</current>", "<state>active</state>"} {
		if !strings.Contains(s, want) {
			t.Errorf("SOAP response missing %q:\n%s", want, s)
		}
	}

	getEnv := fmt.Sprintf(`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body>
	  <getInstance xmlns="urn:gelee:lifecycle"><instanceId>%s</instanceId></getInstance>
	</Body></Envelope>`, snap.ID)
	resp, _ = http.Post(e.srv.URL+"/soap", "text/xml", strings.NewReader(getEnv))
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "<current>elaboration</current>") {
		t.Fatalf("SOAP get:\n%s", body)
	}

	// Fault paths.
	resp, _ = http.Post(e.srv.URL+"/soap", "text/xml", strings.NewReader("<Envelope xmlns=\"http://schemas.xmlsoap.org/soap/envelope/\"><Body/></Envelope>"))
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 500 || !strings.Contains(string(body), "Fault") {
		t.Fatalf("unknown op: %d %s", resp.StatusCode, body)
	}
	resp, _ = http.Post(e.srv.URL+"/soap", "text/xml", strings.NewReader("not xml"))
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("malformed envelope = %d", resp.StatusCode)
	}
}

func TestAuthRequired(t *testing.T) {
	e := newEnv(t, true)
	e.sys.AddUser(gelee.User{Name: "coordinator"})

	model := scenario.QualityPlan()
	data, _ := json.Marshal(model)

	// No user header → 401.
	resp, err := http.Post(e.srv.URL+"/api/v1/models", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous define = %d", resp.StatusCode)
	}
	// Unknown user → 401.
	req, _ := http.NewRequest("POST", e.srv.URL+"/api/v1/models", bytes.NewReader(data))
	req.Header.Set(httpapi.UserHeader, "nobody")
	req.Header.Set("Content-Type", "application/json")
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown user define = %d", resp.StatusCode)
	}
	// Known user → 201.
	if code := e.call(t, "POST", "/api/v1/models", "coordinator", model, nil); code != http.StatusCreated {
		t.Fatalf("known user define = %d", code)
	}
	// Reads stay open.
	if code := e.call(t, "GET", "/api/v1/models", "", nil, nil); code != 200 {
		t.Fatalf("anonymous list = %d", code)
	}
}

func TestDefineModelValidationErrors(t *testing.T) {
	e := newEnv(t, false)
	// Invalid JSON.
	resp, _ := http.Post(e.srv.URL+"/api/v1/models", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	// Structurally invalid model (duplicate phases).
	bad := `{"URI":"urn:x","Name":"x","Phases":[{"ID":"a","Name":"A"},{"ID":"a","Name":"A2"}]}`
	resp, _ = http.Post(e.srv.URL+"/api/v1/models", "application/json", strings.NewReader(bad))
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Fatalf("invalid model = %d", resp.StatusCode)
	}
	// Unknown model fetch.
	resp, _ = http.Get(e.srv.URL + "/api/v1/models/one?uri=urn:ghost")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown model = %d", resp.StatusCode)
	}
}

func TestInstanceErrorsOverAPI(t *testing.T) {
	e := newEnv(t, false)
	if code := e.call(t, "GET", "/api/v1/instances/li-999999", "", nil, nil); code != 404 {
		t.Fatalf("missing instance = %d", code)
	}
	if code := e.call(t, "POST", "/api/v1/instances/li-999999/advance", "u", map[string]any{"to": "x"}, nil); code != 404 {
		t.Fatalf("advance missing = %d", code)
	}
	// Instantiate with unknown model URI.
	if code := e.call(t, "POST", "/api/v1/instances", "u", map[string]any{
		"model_uri": "urn:ghost",
		"resource":  map[string]string{"uri": "u", "type": "t"},
	}, nil); code != 400 {
		t.Fatalf("unknown model instantiate = %d", code)
	}
	// Advance to a phase outside the model → 409.
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D9.9", "o", "x")
	snap, _ := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D9.9", Type: "mediawiki"}, "owner", nil)
	if code := e.call(t, "POST", "/api/v1/instances/"+snap.ID+"/advance", "owner",
		map[string]any{"to": "nonexistent-phase"}, nil); code != 409 {
		t.Fatalf("unknown phase = %d", code)
	}
}

func TestCredentialsNeverLeak(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, err := e.sys.Instantiate(model.URI,
		gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki",
			Credentials: map[string]string{"password": "hunter2"}},
		"owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := http.Get(e.srv.URL + "/api/v1/instances/" + snap.ID)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "hunter2") {
		t.Fatal("resource credentials leaked over the API")
	}
	resp, _ = http.Get(e.srv.URL + "/api/v1/instances")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "hunter2") {
		t.Fatal("resource credentials leaked in the list view")
	}
}

func TestAdminStoreStats(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)

	var stats struct {
		Engine struct {
			Engine  string `json:"engine"`
			State   string `json:"state"`
			Appends uint64 `json:"appends"`
		} `json:"engine"`
		Shards int            `json:"shards"`
		Repos  map[string]int `json:"repos"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/store", "", nil, &stats); code != 200 {
		t.Fatalf("admin store stats = %d", code)
	}
	if stats.Engine.Engine != "memory" || stats.Engine.State != "running" {
		t.Fatalf("engine = %+v", stats.Engine)
	}
	if stats.Shards <= 0 {
		t.Fatalf("shards = %d", stats.Shards)
	}
	if stats.Repos["models"] != 1 {
		t.Fatalf("repos = %v, want models=1", stats.Repos)
	}
	if stats.Engine.Appends == 0 {
		t.Fatal("defining a model journaled nothing")
	}
}

// TestAdminLogPage: the cursor endpoint over the execution log pages
// forward by sequence number and reports whether more history remains.
func TestAdminLogPage(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	ref := gelee.Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
	snap, err := e.sys.Instantiate(model.URI, ref, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.sys.Advance(snap.ID, "internalreview", "owner", gelee.AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	total := e.sys.ExecutionLog().Len()
	if total < 3 {
		t.Fatalf("expected a few log entries, got %d", total)
	}

	type page struct {
		Entries []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		} `json:"entries"`
		Next uint64 `json:"next"`
		More bool   `json:"more"`
	}
	var first page
	if code := e.call(t, "GET", "/api/v1/admin/log?limit=2", "", nil, &first); code != 200 {
		t.Fatalf("admin log page = %d", code)
	}
	if len(first.Entries) != 2 || !first.More {
		t.Fatalf("first page = %+v, want 2 entries with more", first)
	}
	if first.Next != first.Entries[1].Seq {
		t.Fatalf("cursor next = %d, want last seq %d", first.Next, first.Entries[1].Seq)
	}
	// Walk the cursor to the end; pages must cover the log exactly once.
	seen := len(first.Entries)
	cursor := first.Next
	for {
		var p page
		path := fmt.Sprintf("/api/v1/admin/log?after=%d&limit=2", cursor)
		if code := e.call(t, "GET", path, "", nil, &p); code != 200 {
			t.Fatalf("admin log page after %d = %d", cursor, code)
		}
		for _, en := range p.Entries {
			if en.Seq <= cursor {
				t.Fatalf("page after %d returned seq %d", cursor, en.Seq)
			}
		}
		seen += len(p.Entries)
		if len(p.Entries) == 0 {
			break
		}
		cursor = p.Next
	}
	if seen != total {
		t.Fatalf("cursor walk saw %d entries, log has %d", seen, total)
	}
	if code := e.call(t, "GET", "/api/v1/admin/log?after=oops", "", nil, nil); code != 400 {
		t.Fatalf("bad cursor = %d, want 400", code)
	}
}

func TestAdminRuntimeStats(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	ref := gelee.Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
	for i := 0; i < 3; i++ {
		snap, err := e.sys.Instantiate(model.URI, ref, "owner", nil)
		if err != nil {
			t.Fatal(err)
		}
		// internalreview carries actions, so the invocation index grows.
		if _, err := e.sys.Advance(snap.ID, "internalreview", "owner", gelee.AdvanceOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	var stats struct {
		Shards       int   `json:"shards"`
		Instances    int   `json:"instances"`
		PerShard     []int `json:"per_shard"`
		Invocations  int   `json:"invocation_index"`
		ResourceKeys int   `json:"resource_index_keys"`
		ModelKeys    int   `json:"model_index_keys"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/runtime", "", nil, &stats); code != 200 {
		t.Fatalf("admin runtime stats = %d", code)
	}
	if stats.Shards <= 0 || len(stats.PerShard) != stats.Shards {
		t.Fatalf("shards = %d, per_shard = %v", stats.Shards, stats.PerShard)
	}
	if stats.Instances != 3 {
		t.Fatalf("instances = %d, want 3", stats.Instances)
	}
	total := 0
	for _, n := range stats.PerShard {
		total += n
	}
	if total != stats.Instances {
		t.Fatalf("per_shard sums to %d, want %d", total, stats.Instances)
	}
	if stats.Invocations == 0 {
		t.Fatal("entering an action phase left the invocation index empty")
	}
	if stats.ResourceKeys != 1 || stats.ModelKeys != 1 {
		t.Fatalf("index keys = %d resources / %d models, want 1/1", stats.ResourceKeys, stats.ModelKeys)
	}
}

// TestInstanceListPaging walks GET /api/v1/instances with the
// creation-seq cursor and expects the paged envelope to tile the flat
// listing exactly.
func TestInstanceListPaging(t *testing.T) {
	e := newEnv(t, false)
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	const n = 7
	for i := 0; i < n; i++ {
		if _, err := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil); err != nil {
			t.Fatal(err)
		}
	}
	var flat []instanceJSON
	if code := e.call(t, "GET", "/api/v1/instances", "", nil, &flat); code != 200 {
		t.Fatalf("flat list = %d", code)
	}
	if len(flat) != n {
		t.Fatalf("flat list has %d instances", len(flat))
	}

	type pageResp struct {
		Instances []instanceJSON `json:"instances"`
		Total     int            `json:"total"`
		NextAfter int64          `json:"next_after"`
	}
	var walked []string
	after := int64(0)
	pages := 0
	for {
		var page pageResp
		path := fmt.Sprintf("/api/v1/instances?after=%d&limit=3", after)
		if code := e.call(t, "GET", path, "", nil, &page); code != 200 {
			t.Fatalf("paged list = %d", code)
		}
		if page.Total != n {
			t.Fatalf("total = %d, want %d", page.Total, n)
		}
		for _, in := range page.Instances {
			walked = append(walked, in.ID)
		}
		pages++
		if page.NextAfter == 0 {
			break
		}
		after = page.NextAfter
	}
	if pages != 3 || len(walked) != n {
		t.Fatalf("walked %d pages, %d instances", pages, len(walked))
	}
	for i := range flat {
		if walked[i] != flat[i].ID {
			t.Fatalf("page order diverged at %d: %s vs %s", i, walked[i], flat[i].ID)
		}
	}
	// Bad cursors are rejected.
	if code := e.call(t, "GET", "/api/v1/instances?after=-1", "", nil, nil); code != 400 {
		t.Fatalf("negative cursor = %d", code)
	}
	if code := e.call(t, "GET", "/api/v1/instances?limit=x", "", nil, nil); code != 400 {
		t.Fatalf("bad limit = %d", code)
	}
}

// TestAdminPersistenceStats: the admin endpoints surface the
// durability seam — runtime recovery counters and the instance
// journal's engine stats.
func TestAdminPersistenceStats(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	mk := func() *env {
		sys, err := gelee.New(gelee.Options{
			DataDir: dir, Clock: clock, EmbeddedPlugins: true,
			SyncActions: true, PersistInstances: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(sys.HTTPHandler())
		t.Cleanup(func() { srv.Close(); sys.Close() })
		return &env{sys: sys, srv: srv, clock: clock}
	}
	e := mk()
	model := scenario.QualityPlan()
	e.sys.DefineModel("", model)
	e.sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, err := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}

	type persistence struct {
		Enabled   bool  `json:"enabled"`
		Records   int64 `json:"journal_records"`
		Errors    int64 `json:"journal_errors"`
		Recovered struct {
			Instances int   `json:"instances"`
			Records   int64 `json:"records"`
		} `json:"recovered"`
	}
	var stats struct {
		Persistence persistence `json:"persistence"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/runtime", "", nil, &stats); code != 200 {
		t.Fatalf("admin runtime = %d", code)
	}
	if !stats.Persistence.Enabled || stats.Persistence.Records < 2 || stats.Persistence.Errors != 0 {
		t.Fatalf("persistence stats = %+v", stats.Persistence)
	}
	var ss struct {
		Instances *struct {
			Engine  string `json:"engine"`
			Appends uint64 `json:"appends"`
		} `json:"instances"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/store", "", nil, &ss); code != 200 {
		t.Fatalf("admin store = %d", code)
	}
	if ss.Instances == nil || ss.Instances.Appends < 2 {
		t.Fatalf("store instance stats = %+v", ss.Instances)
	}
	e.sys.Close()
	e.srv.Close()

	// After a restart the recovery section reports the rebuilt state.
	e2 := mk()
	var stats2 struct {
		Persistence persistence `json:"persistence"`
	}
	if code := e2.call(t, "GET", "/api/v1/admin/runtime", "", nil, &stats2); code != 200 {
		t.Fatalf("admin runtime after restart = %d", code)
	}
	if stats2.Persistence.Recovered.Instances != 1 || stats2.Persistence.Recovered.Records < 2 {
		t.Fatalf("recovered stats = %+v", stats2.Persistence)
	}
}

// TestTimelineBackfillOverAPI: the timeline endpoint serves pages
// older than the in-memory ring from the journaled execution log.
func TestTimelineBackfillOverAPI(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys, err := gelee.New(gelee.Options{
		Clock: clock, EmbeddedPlugins: true, SyncActions: true,
		MaxEventsInMemory: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.HTTPHandler())
	t.Cleanup(func() { srv.Close(); sys.Close() })
	e := &env{sys: sys, srv: srv, clock: clock}

	model := scenario.QualityPlan()
	sys.DefineModel("", model)
	sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, err := sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	const notes = 30
	for i := 0; i < notes; i++ {
		if err := sys.Annotate(snap.ID, "owner", fmt.Sprintf("note %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var page struct {
		Entries []struct {
			Seq int `json:"seq"`
		} `json:"entries"`
		Total      int  `json:"total"`
		Truncated  bool `json:"truncated"`
		Backfilled int  `json:"backfilled"`
	}
	if code := e.call(t, "GET", "/api/v1/instances/"+snap.ID+"/timeline?limit=12", "", nil, &page); code != 200 {
		t.Fatalf("timeline = %d", code)
	}
	if page.Truncated || page.Backfilled == 0 {
		t.Fatalf("page not backfilled: %+v", page)
	}
	if len(page.Entries) != 12 || page.Entries[0].Seq != 1 {
		t.Fatalf("backfilled page shape: %+v", page)
	}
	if page.Total != notes+1 {
		t.Fatalf("total = %d, want %d", page.Total, notes+1)
	}
}
