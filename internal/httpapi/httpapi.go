// Package httpapi exposes the lifecycle manager over HTTP: the
// SOAP/REST interfaces of Fig. 2 through which the designer GUI,
// execution widgets, monitoring cockpit and resource plug-ins talk to
// the kernel.
//
// REST resources (JSON unless stated):
//
//	GET  /api/v1/ping                     liveness
//	POST /api/v1/models                   define model (JSON or Table I XML)
//	GET  /api/v1/models                   list models
//	GET  /api/v1/models/{uri...}          fetch by path-escaped model URI
//	                                      (?format=xml → Table I)
//	GET  /api/v1/models/one?uri=U         deprecated query-param fetch
//	POST /api/v1/models/propagate?uri=U   push new version to instances
//	GET  /api/v1/actions[?resource_type=] browse action library (Fig. 3)
//	POST /api/v1/actions                  register action type (+impls)
//	POST /api/v1/instances                instantiate
//	GET  /api/v1/instances                list (summary view, no histories);
//	                                      ?after=SEQ&limit=N pages by creation
//	                                      seq off the runtime's population
//	                                      index; ?resource=U&model=U&state=S
//	                                      &late=1 filters, pushed down to the
//	                                      runtime's secondary indexes; any of
//	                                      those params wraps the page in the
//	                                      uniform envelope
//	GET  /api/v1/instances/{id}           snapshot (full history)
//	GET  /api/v1/instances/{id}/timeline  paged history (?after=S&limit=N);
//	                                      pages older than the in-memory ring
//	                                      are backfilled from the journaled
//	                                      execution log
//	POST /api/v1/instances/{id}/advance   move the token; responds with the
//	                                      summary + only the events this move
//	                                      appended, unless ?full=1
//	POST /api/v1/instances/{id}/annotations
//	POST /api/v1/instances/{id}/bindings  inst-stage parameter values
//	POST /api/v1/instances/{id}/migrate   accept/reject a pending change
//	                                      (accept honors ?full=1 like advance)
//	POST /api/v1/callbacks/{inv}          action status callback (no auth)
//	GET  /api/v1/admin/store              data-tier engine stats
//	GET  /api/v1/admin/runtime            runtime shard/index stats
//	GET  /api/v1/admin/health             aggregated resilience report
//	                                      (no auth; 503 when read-only)
//	GET  /api/v1/admin/alerts[?limit=N]   recent threshold alerts
//	GET  /api/v1/admin/alerts/stream      live alert feed (SSE)
//	GET  /api/v1/monitor/summary|overview|late
//	                                      overview and late accept the same
//	                                      ?resource=&model=&state=&late=1
//	                                      filters as the instance list
//	GET  /api/v1/monitor/instances/{id}/timeline
//	GET  /widgets/{id}                    HTML widget (Fig. 4)
//	GET  /widgets/{id}/json               widget payload
//	GET  /widgets/{id}/feed               RSS feed (pipes, §V.C)
//	POST /soap                            SOAP 1.1 subset (see soap.go)
//
// # Paging envelope
//
// Every cursor-paged collection — GET /api/v1/instances (paged or
// filtered mode), GET /api/v1/instances/{id}/timeline,
// GET /api/v1/monitor/instances/{id}/timeline and GET /api/v1/admin/log
// — shares one envelope shape: {items, total, next_after}. items is the
// page, total the collection size where the server knows it without a
// scan (0 = unknown: filtered instance walks, the unbounded admin log),
// and next_after the cursor of the following page (absent at the tail;
// pass it back as ?after=).
//
// Deprecated aliases: for one release each envelope also carries its
// pre-unification field names — "instances" on the instance list,
// "entries" on both timelines, and "entries"/"next"/"more" on the admin
// log — mirroring items/next_after. The monitor timeline, which used to
// return a bare JSON array, now returns the envelope (read it from
// "items"). New clients must use the uniform names; the aliases go away
// next release.
//
// # Errors
//
// Every 4xx/5xx response from every route is a JSON object
// {code, message} — code a stable machine-readable string
// (bad_request, unauthorized, forbidden, not_found, conflict, invalid,
// overloaded, read_only, internal, not_implemented, unavailable),
// message the human-readable detail. Backoff rejections additionally
// carry retry_after_ms (mirrored in the Retry-After header) and
// read-only rejections mode:"read-only". The legacy "error" field
// mirrors message for one release (deprecated, like the envelope
// aliases). SOAP faults are unaffected (SOAP 1.1 fault envelope).
//
// # Deprecations
//
// GET /api/v1/models/one?uri=U is deprecated in favor of
// GET /api/v1/models/{uri...} (path-escape the model URI); the old
// route still works for one release and answers with a
// "Deprecation: true" header, as does every deprecated-alias envelope.
// A model whose URI is literally "one" must use the escaped path form.
//
// Authentication is the hosted-prototype scheme: the X-Gelee-User header
// names the acting user. With RequireAuth the header must name a known
// user; callbacks and public widgets stay open.
//
// Every mutating route (including callbacks and the SOAP advance) is
// gated by the resilience layer: under load shedding it answers 429
// with a Retry-After header and {"code":"overloaded","retry_after_ms"}
// body, and in read-only mode 503 with {"code":"read_only",
// "mode":"read-only"}. Reads are never gated — a degraded node keeps
// serving the cockpit.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/invoke"
	"github.com/liquidpub/gelee/internal/monitor"
	"github.com/liquidpub/gelee/internal/resilience"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/store"
	"github.com/liquidpub/gelee/internal/widget"
	"github.com/liquidpub/gelee/internal/xmlcodec"
)

// UserHeader names the acting user on authenticated routes.
const UserHeader = "X-Gelee-User"

// Backend is the kernel surface the HTTP layer drives — implemented by
// *gelee.System.
type Backend interface {
	DefineModel(actor string, m *core.Model) error
	Model(uri string) (*core.Model, bool)
	// ModelView is the read-cache path: a shared value the handler only
	// marshals, never mutates — repeated fetches of a hot model skip
	// the defensive clone Model pays.
	ModelView(uri string) (*core.Model, bool)
	Models() []*core.Model
	Propagate(actor string, m *core.Model, note string) (int, error)

	ActionTypes(resourceType string) []actionlib.ActionType
	RegisterAction(actor string, at actionlib.ActionType, impls ...actionlib.Implementation) error

	Instantiate(modelURI string, ref resource.Ref, owner string, bindings map[string]map[string]string) (runtime.Snapshot, error)
	Advance(instID, toPhase, actor string, opts runtime.AdvanceOptions) (runtime.Snapshot, error)
	AdvanceSummary(instID, toPhase, actor string, opts runtime.AdvanceOptions) (runtime.MoveResult, error)
	Annotate(instID, actor, note string) error
	BindParams(instID, actor, actionURI string, values map[string]string) error
	AcceptChange(instID, actor, landing string) (runtime.Snapshot, error)
	AcceptChangeSummary(instID, actor, landing string) (runtime.MoveResult, error)
	RejectChange(instID, actor, note string) error
	Instance(id string) (runtime.Snapshot, bool)
	InstanceSummary(id string) (runtime.Summary, bool)
	Instances() []runtime.Snapshot
	Summaries() []runtime.Summary
	SummariesPage(after int64, limit int) runtime.SummaryPage
	// QuerySummaries is the filtered page: resource/model URIs are
	// served from the runtime's secondary indexes, state/lateness from
	// the maintained summary counters.
	QuerySummaries(f runtime.Filter, after int64, limit int) runtime.SummaryPage
	Report(up actionlib.StatusUpdate) error

	Monitor() *monitor.Monitor
	Widgets() *widget.Renderer
	StoreStats() store.Stats
	RuntimeStats() runtime.Stats
	ExecutionLogPage(after uint64, limit int) ([]store.LogEntry, error)
	// ExecutionLogLen is the number of entries ever appended to the
	// execution log (hot + archived) — the total of the admin-log page
	// envelope.
	ExecutionLogLen() int
	UserExists(name string) bool

	// Resilience surface: AdmitMutation gates every mutating route
	// (nil admits; resilience.ErrShed → 429, resilience.ErrReadOnly →
	// 503 — reads are never gated), HealthReport feeds the aggregated
	// admin health endpoint, RecentAlerts/SubscribeAlerts back the
	// alert list and SSE stream.
	AdmitMutation() error
	HealthReport() resilience.Report
	RecentAlerts(limit int) []resilience.Alert
	SubscribeAlerts(buf int) (<-chan resilience.Alert, func())
}

// Options configure the server.
type Options struct {
	// RequireAuth rejects mutating requests without a known user in the
	// UserHeader.
	RequireAuth bool
}

// Server is the HTTP front end.
type Server struct {
	b    Backend
	opts Options
	mux  *http.ServeMux
}

// New builds the server and its routing table.
func New(b Backend, opts Options) *Server {
	s := &Server{b: b, opts: opts, mux: http.NewServeMux()}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"gelee": "ok"})
	})

	// Design time. Mutating routes pass the resilience gate first —
	// shedding a request is cheaper than authenticating it.
	s.mux.HandleFunc("POST /api/v1/models", s.mutating(s.authed(s.handleDefineModel)))
	s.mux.HandleFunc("GET /api/v1/models", s.handleListModels)
	// Path-escaped model addressing; the literal "one" route below wins
	// for exactly /models/one (deprecated query-param lookup).
	s.mux.HandleFunc("GET /api/v1/models/{uri...}", s.handleGetModelByPath)
	s.mux.HandleFunc("GET /api/v1/models/one", s.handleGetModel)
	s.mux.HandleFunc("POST /api/v1/models/propagate", s.mutating(s.authed(s.handlePropagate)))
	s.mux.HandleFunc("GET /api/v1/actions", s.handleBrowseActions)
	s.mux.HandleFunc("POST /api/v1/actions", s.mutating(s.authed(s.handleRegisterAction)))

	// Run time.
	s.mux.HandleFunc("POST /api/v1/instances", s.mutating(s.authed(s.handleInstantiate)))
	s.mux.HandleFunc("GET /api/v1/instances", s.handleListInstances)
	s.mux.HandleFunc("GET /api/v1/instances/{id}", s.handleGetInstance)
	s.mux.HandleFunc("GET /api/v1/instances/{id}/timeline", s.handleInstanceTimeline)
	s.mux.HandleFunc("POST /api/v1/instances/{id}/advance", s.mutating(s.authed(s.handleAdvance)))
	s.mux.HandleFunc("POST /api/v1/instances/{id}/annotations", s.mutating(s.authed(s.handleAnnotate)))
	s.mux.HandleFunc("POST /api/v1/instances/{id}/bindings", s.mutating(s.authed(s.handleBind)))
	s.mux.HandleFunc("POST /api/v1/instances/{id}/migrate", s.mutating(s.authed(s.handleMigrate)))

	// Callbacks are invoked by action implementations, not users. They
	// mutate instance state, so they pass the gate too — a shed or
	// read-only 429/503 tells the action service to retry its report.
	s.mux.HandleFunc("POST /api/v1/callbacks/{inv}", s.mutating(s.handleCallback))

	// Admin: data-tier engine health (group-commit counters, shard
	// count, per-repository sizes) and runtime health (instance-shard
	// occupancy, secondary-index sizes).
	s.mux.HandleFunc("GET /api/v1/admin/store", s.authed(s.handleStoreStats))
	s.mux.HandleFunc("GET /api/v1/admin/runtime", s.authed(s.handleRuntimeStats))
	// Execution-log pages: a seq cursor over unbounded history, cold
	// pages streamed from archive files on demand.
	s.mux.HandleFunc("GET /api/v1/admin/log", s.authed(s.handleExecLogPage))
	// Aggregated health for load balancers: 200 while mutations are
	// admitted, 503 in read-only mode. Deliberately unauthenticated —
	// probes don't carry user headers.
	s.mux.HandleFunc("GET /api/v1/admin/health", s.handleHealth)
	// Threshold alerts: recent ring + live SSE stream.
	s.mux.HandleFunc("GET /api/v1/admin/alerts", s.authed(s.handleAlerts))
	s.mux.HandleFunc("GET /api/v1/admin/alerts/stream", s.authed(s.handleAlertStream))

	// Monitoring cockpit.
	s.mux.HandleFunc("GET /api/v1/monitor/summary", s.handleMonitorSummary)
	s.mux.HandleFunc("GET /api/v1/monitor/overview", s.handleMonitorOverview)
	s.mux.HandleFunc("GET /api/v1/monitor/late", s.handleMonitorLate)
	s.mux.HandleFunc("GET /api/v1/monitor/instances/{id}/timeline", s.handleTimeline)

	// Widgets.
	s.mux.HandleFunc("GET /widgets/{id}", s.handleWidgetHTML)
	s.mux.HandleFunc("GET /widgets/{id}/json", s.handleWidgetJSON)
	s.mux.HandleFunc("GET /widgets/{id}/feed", s.handleWidgetFeed)

	// SOAP subset.
	s.mux.HandleFunc("POST /soap", s.handleSOAP)
}

// user extracts the acting user from the request.
func (s *Server) user(r *http.Request) string { return r.Header.Get(UserHeader) }

// authed wraps mutating handlers with the hosted-prototype auth check.
// mutating gates a write behind the backend's admission decision:
// read-only mode → 503 with a mode field, load shed → 429 with a
// Retry-After header. Reads never pass through here.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.b.AdmitMutation(); err != nil {
			writeAdmissionError(w, err)
			return
		}
		h(w, r)
	}
}

// writeAdmissionError renders a structured rejection body — never a
// generic 500, so clients can distinguish "back off and retry" from
// "this node stopped accepting writes".
func writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, resilience.ErrShed):
		ra := resilience.RetryAfterOf(err)
		if ra <= 0 {
			ra = time.Second
		}
		secs := int64((ra + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Code:         "overloaded",
			Message:      err.Error(),
			RetryAfterMS: ra.Milliseconds(),
			Error:        err.Error(),
		})
	case errors.Is(err, resilience.ErrReadOnly):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, apiError{
			Code:    "read_only",
			Message: err.Error(),
			Mode:    "read-only",
			Error:   err.Error(),
		})
	default:
		writeError(w, http.StatusServiceUnavailable, err)
	}
}

func (s *Server) authed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.RequireAuth {
			u := s.user(r)
			if u == "" || !s.b.UserExists(u) {
				writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or unknown %s header", UserHeader))
				return
			}
		}
		h(w, r)
	}
}

// ---- helpers -----------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// apiError is the structured shape of every 4xx/5xx response (see the
// package doc's Errors section): a stable machine-readable code, the
// human-readable message, and optional backoff/mode fields.
type apiError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Mode         string `json:"mode,omitempty"`
	// Error mirrors Message under the pre-redesign field name.
	// Deprecated: read Message; this alias goes away next release.
	Error string `json:"error"`
}

// codeFor derives the stable error code from the HTTP status.
func codeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusUnprocessableEntity:
		return "invalid"
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusInternalServerError:
		return "internal"
	}
	if status >= 500 {
		return "internal"
	}
	return "bad_request"
}

// writeError renders the uniform structured error body; every handler's
// 4xx/5xx path funnels through here (or writeAdmissionError, which adds
// the backoff fields).
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{
		Code:    codeFor(status),
		Message: err.Error(),
		Error:   err.Error(),
	})
}

// statusFor maps kernel errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, runtime.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, runtime.ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, runtime.ErrUnknownPhase), errors.Is(err, runtime.ErrNoPending):
		return http.StatusConflict
	case core.IsValidation(err):
		return http.StatusUnprocessableEntity
	}
	var be *actionlib.BindingError
	if errors.As(err, &be) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// readBody caps request bodies at 4 MiB.
func readBody(r *http.Request) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r.Body, 4<<20))
}

func isXML(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return strings.Contains(ct, "xml")
}

// ---- payloads ----------------------------------------------------------------

// modelSummary is the list view of a model.
type modelSummary struct {
	URI     string   `json:"uri"`
	Name    string   `json:"name"`
	Version string   `json:"version"`
	Phases  []string `json:"phases"`
	Types   []string `json:"resource_types,omitempty"`
}

func toModelSummary(m *core.Model) modelSummary {
	return modelSummary{
		URI: m.URI, Name: m.Name, Version: m.Version.Number,
		Phases: m.PhaseIDs(), Types: m.ResourceTypes,
	}
}

// instancePayload is the JSON view of a snapshot (Snapshot itself keeps
// its model out of JSON).
type instancePayload struct {
	ID            string                    `json:"id"`
	ModelURI      string                    `json:"model_uri"`
	ModelName     string                    `json:"model_name"`
	Resource      resource.Ref              `json:"resource"`
	Owner         string                    `json:"owner"`
	State         string                    `json:"state"`
	Current       string                    `json:"current"`
	NextSuggested []string                  `json:"next_suggested"`
	Phases        []string                  `json:"phases"`
	Events        []runtime.Event           `json:"events,omitempty"`
	Executions    []runtime.ActionExecution `json:"executions,omitempty"`
	Pending       string                    `json:"pending_change,omitempty"`
	Unresolved    []string                  `json:"unresolved_actions,omitempty"`
}

func toInstancePayload(s runtime.Snapshot, full bool) instancePayload {
	p := instancePayload{
		ID:            s.ID,
		ModelURI:      s.ModelURI,
		ModelName:     s.Model.Name,
		Resource:      s.Resource,
		Owner:         s.Owner,
		State:         string(s.State),
		Current:       s.Current,
		NextSuggested: s.NextSuggested(),
		Phases:        s.Model.PhaseIDs(),
		Unresolved:    s.Unresolved,
	}
	p.Resource.Credentials = nil // never leak credentials over the API
	if s.Pending != nil {
		p.Pending = s.Pending.Summary
	}
	if full {
		p.Events = s.Events
		p.Executions = s.Executions
	}
	return p
}

// toSummaryPayload maps a runtime.Summary onto the same wire shape as
// the snapshot-backed payload with histories omitted.
func toSummaryPayload(sum runtime.Summary) instancePayload {
	p := instancePayload{
		ID:            sum.ID,
		ModelURI:      sum.ModelURI,
		ModelName:     sum.ModelName,
		Resource:      sum.Resource,
		Owner:         sum.Owner,
		State:         string(sum.State),
		Current:       sum.Current,
		NextSuggested: sum.NextSuggested,
		Phases:        sum.Phases,
		Unresolved:    sum.Unresolved,
		Pending:       sum.Pending,
	}
	p.Resource.Credentials = nil // never leak credentials over the API
	return p
}

// toMovePayload maps a copy-free move result onto the instance wire
// shape: the summary fields plus only the events the move appended (the
// executions list is available via GET /instances/{id} or ?full=1).
func toMovePayload(res runtime.MoveResult) instancePayload {
	p := toSummaryPayload(res.Summary)
	p.Events = res.Events
	return p
}

// wantFull reports the ?full=1 escape hatch back to the snapshot-backed
// response shape.
func wantFull(r *http.Request) bool { return r.URL.Query().Get("full") == "1" }

// ---- page envelopes ----------------------------------------------------------
//
// One cursor shape for every paged collection (see the package doc's
// Paging envelope section): {items, total, next_after}, plus the
// deprecated per-endpoint aliases kept for one release. Responses
// carrying an alias also set the "Deprecation: true" header.

// instancesPage is the envelope of the paged/filtered instance list.
type instancesPage struct {
	Items []instancePayload `json:"items"`
	// Total is the live population for unfiltered pages; for filtered
	// pages it is the match count when served from a secondary index
	// and 0 (unknown) when the filter required a predicate walk.
	Total     int   `json:"total"`
	NextAfter int64 `json:"next_after,omitempty"`
	// Instances mirrors Items.
	// Deprecated: read Items; this alias goes away next release.
	Instances []instancePayload `json:"instances"`
}

// timelinePage is the envelope of both timeline routes, wrapping the
// monitor's page with the uniform field names.
type timelinePage struct {
	Items     []monitor.TimelineEntry `json:"items"`
	Total     int                     `json:"total"`
	NextAfter int                     `json:"next_after,omitempty"`
	// OldestSeq/Truncated/Backfilled report ring truncation and
	// execution-log backfill, as before.
	OldestSeq  int  `json:"oldest_seq"`
	Truncated  bool `json:"truncated"`
	Backfilled int  `json:"backfilled,omitempty"`
	// Entries mirrors Items.
	// Deprecated: read Items; this alias goes away next release.
	Entries []monitor.TimelineEntry `json:"entries"`
}

func toTimelinePage(p monitor.TimelinePage) timelinePage {
	return timelinePage{
		Items:      p.Entries,
		Total:      p.Total,
		NextAfter:  p.NextAfter,
		OldestSeq:  p.OldestSeq,
		Truncated:  p.Truncated,
		Backfilled: p.Backfilled,
		Entries:    p.Entries,
	}
}

// execLogPage is the envelope of the admin execution-log cursor.
type execLogPage struct {
	Items []store.LogEntry `json:"items"`
	// Total is the number of entries ever appended (hot + archived).
	Total     int    `json:"total"`
	NextAfter uint64 `json:"next_after,omitempty"`
	// Entries/Next/More mirror Items and the cursor state.
	// Deprecated: read Items/NextAfter; these aliases go away next
	// release.
	Entries []store.LogEntry `json:"entries"`
	Next    uint64           `json:"next"`
	More    bool             `json:"more"`
}

// deprecatedAliases marks a response that still carries pre-redesign
// field names or reached a deprecated route.
func deprecatedAliases(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
}

// parseFilter extracts the pushed-down population filter from the
// query: ?resource=URI, ?model=URI, ?state=active|completed, ?late=1.
// has reports whether any filter was present.
func parseFilter(q url.Values) (f runtime.Filter, has bool, err error) {
	f.Resource = q.Get("resource")
	f.ModelURI = q.Get("model")
	switch st := q.Get("state"); st {
	case "":
	case string(runtime.StateActive), string(runtime.StateCompleted):
		f.State = runtime.State(st)
	default:
		return f, false, fmt.Errorf("bad state %q: want active or completed", st)
	}
	switch late := q.Get("late"); late {
	case "", "0", "false":
	case "1", "true":
		f.LateOnly = true
	default:
		return f, false, fmt.Errorf("bad late %q: want 1 or 0", q.Get("late"))
	}
	has = f.Resource != "" || f.ModelURI != "" || f.State != "" || f.LateOnly
	return f, has, nil
}

// ---- design-time handlers ------------------------------------------------------

func (s *Server) decodeModel(r *http.Request) (*core.Model, error) {
	body, err := readBody(r)
	if err != nil {
		return nil, err
	}
	if isXML(r) || (len(body) > 0 && body[0] == '<') {
		return xmlcodec.UnmarshalModel(body)
	}
	var m core.Model
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("httpapi: decode model JSON: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (s *Server) handleDefineModel(w http.ResponseWriter, r *http.Request) {
	m, err := s.decodeModel(r)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if err := s.b.DefineModel(s.user(r), m); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, toModelSummary(m))
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	models := s.b.Models()
	out := make([]modelSummary, len(models))
	for i, m := range models {
		out[i] = toModelSummary(m)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetModel is the deprecated query-param lookup
// (GET /api/v1/models/one?uri=U); prefer the path-addressed route.
func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	deprecatedAliases(w)
	s.serveModel(w, r, r.URL.Query().Get("uri"))
}

// handleGetModelByPath is the REST-conventional model fetch: the model
// URI rides the path, path-escaped (GET /api/v1/models/{uri...}).
func (s *Server) handleGetModelByPath(w http.ResponseWriter, r *http.Request) {
	s.serveModel(w, r, r.PathValue("uri"))
}

func (s *Server) serveModel(w http.ResponseWriter, r *http.Request, uri string) {
	m, ok := s.b.ModelView(uri)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no model %q", uri))
		return
	}
	if r.URL.Query().Get("format") == "xml" {
		out, err := xmlcodec.MarshalModel(m)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		w.Write(out)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handlePropagate(w http.ResponseWriter, r *http.Request) {
	m, err := s.decodeModel(r)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	note := r.URL.Query().Get("note")
	n, err := s.b.Propagate(s.user(r), m, note)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"proposed_to": n})
}

func (s *Server) handleBrowseActions(w http.ResponseWriter, r *http.Request) {
	// Fig. 3: design time browses everything; passing resource_type
	// gives the run-time filtered view.
	types := s.b.ActionTypes(r.URL.Query().Get("resource_type"))
	writeJSON(w, http.StatusOK, types)
}

func (s *Server) handleRegisterAction(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var at actionlib.ActionType
	var impls []actionlib.Implementation
	if isXML(r) || (len(body) > 0 && body[0] == '<') {
		at, err = xmlcodec.UnmarshalActionType(body)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
	} else {
		var req struct {
			Type            actionlib.ActionType       `json:"type"`
			Implementations []actionlib.Implementation `json:"implementations"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode action registration: %w", err))
			return
		}
		at, impls = req.Type, req.Implementations
	}
	if err := s.b.RegisterAction(s.user(r), at, impls...); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"uri": at.URI})
}

// ---- run-time handlers ----------------------------------------------------------

func (s *Server) handleInstantiate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ModelURI string                       `json:"model_uri"`
		Resource resource.Ref                 `json:"resource"`
		Owner    string                       `json:"owner"`
		Bindings map[string]map[string]string `json:"bindings"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	owner := req.Owner
	if owner == "" {
		owner = s.user(r)
	}
	snap, err := s.b.Instantiate(req.ModelURI, req.Resource, owner, req.Bindings)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, toInstancePayload(snap, true))
}

func (s *Server) handleListInstances(w http.ResponseWriter, r *http.Request) {
	// The list view rides the runtime's summary path: no event-history
	// deep copies, served off the incrementally maintained population
	// index. With ?after=, ?limit= or any filter param
	// (?resource=&model=&state=&late=1 — pushed down to the runtime's
	// secondary indexes) it returns the uniform page envelope; the
	// bare parameterless call keeps the legacy bare-array shape for one
	// release.
	q := r.URL.Query()
	f, filtered, err := parseFilter(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !filtered && q.Get("after") == "" && q.Get("limit") == "" {
		sums := s.b.Summaries()
		out := make([]instancePayload, len(sums))
		for i, sum := range sums {
			out[i] = toSummaryPayload(sum)
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	after, err := queryInt64(q.Get("after"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad after: %w", err))
		return
	}
	limit, err := queryInt(q.Get("limit"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit: %w", err))
		return
	}
	page := s.b.QuerySummaries(f, after, limit)
	items := make([]instancePayload, len(page.Summaries))
	for i, sum := range page.Summaries {
		items[i] = toSummaryPayload(sum)
	}
	deprecatedAliases(w)
	writeJSON(w, http.StatusOK, instancesPage{
		Items:     items,
		Total:     page.Total,
		NextAfter: page.NextAfter,
		Instances: items,
	})
}

func (s *Server) handleGetInstance(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.b.Instance(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, toInstancePayload(snap, true))
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		To         string                       `json:"to"`
		Annotation string                       `json:"annotation"`
		Bindings   map[string]map[string]string `json:"bindings"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := runtime.AdvanceOptions{
		Annotation:   req.Annotation,
		CallBindings: req.Bindings,
	}
	// Default response is the copy-free mode: the post-move summary plus
	// only the events this move appended. ?full=1 restores the full
	// history snapshot.
	if wantFull(r) {
		snap, err := s.b.Advance(r.PathValue("id"), req.To, s.user(r), opts)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, toInstancePayload(snap, true))
		return
	}
	res, err := s.b.AdvanceSummary(r.PathValue("id"), req.To, s.user(r), opts)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toMovePayload(res))
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Note string `json:"note"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.b.Annotate(r.PathValue("id"), s.user(r), req.Note); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"annotated": r.PathValue("id")})
}

func (s *Server) handleBind(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ActionURI string            `json:"action_uri"`
		Values    map[string]string `json:"values"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.b.BindParams(r.PathValue("id"), s.user(r), req.ActionURI, req.Values); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"bound": req.ActionURI})
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Decision string `json:"decision"` // "accept" | "reject"
		Landing  string `json:"landing"`
		Note     string `json:"note"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch req.Decision {
	case "accept":
		if wantFull(r) {
			snap, err := s.b.AcceptChange(r.PathValue("id"), s.user(r), req.Landing)
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, toInstancePayload(snap, true))
			return
		}
		res, err := s.b.AcceptChangeSummary(r.PathValue("id"), s.user(r), req.Landing)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, toMovePayload(res))
	case "reject":
		if err := s.b.RejectChange(r.PathValue("id"), s.user(r), req.Note); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"rejected": r.PathValue("id")})
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("decision must be accept or reject"))
	}
}

func (s *Server) handleCallback(w http.ResponseWriter, r *http.Request) {
	up, err := invoke.DecodeStatus(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if up.InvocationID == "" {
		up.InvocationID = r.PathValue("inv")
	}
	if up.InvocationID != r.PathValue("inv") {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("invocation id mismatch: body %q vs path %q", up.InvocationID, r.PathValue("inv")))
		return
	}
	if err := s.b.Report(up); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"received": up.InvocationID})
}

// ---- monitoring handlers ---------------------------------------------------------

func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.StoreStats())
}

func (s *Server) handleRuntimeStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.RuntimeStats())
}

// handleExecLogPage serves execution-log pages: ?after=<seq> resumes
// past a cursor, ?limit=<n> bounds the page (default 100, max 1000).
// Cold history streams from archive files; a page entirely below the
// archived range touches at most one archive on disk.
func (s *Server) handleExecLogPage(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, err := queryInt(q.Get("after"))
	if err != nil || after < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad after: %v", q.Get("after")))
		return
	}
	limit, err := queryInt(q.Get("limit"))
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit: %v", q.Get("limit")))
		return
	}
	if limit == 0 {
		limit = 100
	}
	if limit > 1000 {
		limit = 1000
	}
	entries, err := s.b.ExecutionLogPage(uint64(after), limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	next := uint64(after)
	if n := len(entries); n > 0 {
		next = entries[n-1].Seq
	}
	out := execLogPage{
		Items:   entries,
		Total:   s.b.ExecutionLogLen(),
		Entries: entries,
		Next:    next,
		More:    len(entries) == limit,
	}
	if out.More {
		out.NextAfter = next
	}
	deprecatedAliases(w)
	writeJSON(w, http.StatusOK, out)
}

// handleHealth serves the aggregated resilience report. Load balancers
// key off the status code alone: 200 while mutations are admitted
// (healthy or degraded), 503 once the node is read-only.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	rep := s.b.HealthReport()
	status := http.StatusOK
	if rep.State == resilience.ReadOnly.String() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

// handleAlerts lists the newest retained alerts (?limit=N).
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r.URL.Query().Get("limit"))
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit: %v", r.URL.Query().Get("limit")))
		return
	}
	alerts := s.b.RecentAlerts(limit)
	if alerts == nil {
		alerts = []resilience.Alert{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"alerts": alerts})
}

// handleAlertStream pushes alerts as server-sent events until the
// client disconnects. Slow consumers drop alerts rather than block the
// watcher; clients resync from GET /api/v1/admin/alerts on reconnect.
func (s *Server) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	ch, cancel := s.b.SubscribeAlerts(16)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "retry: 5000\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case a, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(a)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: alert\ndata: %s\n\n", data)
			fl.Flush()
		}
	}
}

func (s *Server) handleMonitorSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.Monitor().Summarize())
}

func (s *Server) handleMonitorOverview(w http.ResponseWriter, r *http.Request) {
	f, _, err := parseFilter(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows := s.b.Monitor().OverviewWhere(f)
	if rows == nil {
		rows = []monitor.Row{}
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleMonitorLate(w http.ResponseWriter, r *http.Request) {
	f, _, err := parseFilter(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows := s.b.Monitor().LateWhere(f)
	if rows == nil {
		rows = []monitor.Row{}
	}
	writeJSON(w, http.StatusOK, rows)
}

// handleTimeline is the monitor's timeline view. It shares the uniform
// page envelope with the API timeline route (?after=&limit= page it);
// the pre-redesign bare-array shape is gone — read the "items" field.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, err := queryInt(q.Get("after"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad after: %w", err))
		return
	}
	limit, err := queryInt(q.Get("limit"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit: %w", err))
		return
	}
	page, ok := s.b.Monitor().TimelinePage(r.PathValue("id"), after, limit)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("id")))
		return
	}
	deprecatedAliases(w)
	writeJSON(w, http.StatusOK, toTimelinePage(page))
}

// handleInstanceTimeline serves the paged history window:
// ?after=<seq> resumes past a cursor, ?limit=<n> bounds the page. It is
// backed by the runtime's event window, so it copies only the page —
// no execution slice, no model — and reports when ring truncation cut
// the requested range.
func (s *Server) handleInstanceTimeline(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, err := queryInt(q.Get("after"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad after: %w", err))
		return
	}
	limit, err := queryInt(q.Get("limit"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit: %w", err))
		return
	}
	page, ok := s.b.Monitor().TimelinePage(r.PathValue("id"), after, limit)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("id")))
		return
	}
	deprecatedAliases(w)
	writeJSON(w, http.StatusOK, toTimelinePage(page))
}

// queryInt parses an optional non-negative integer query value.
func queryInt(s string) (int, error) {
	n, err := queryInt64(s)
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// queryInt64 parses an optional non-negative int64 query value (the
// creation-seq cursor of the population paging).
func queryInt64(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("must be >= 0, got %d", n)
	}
	return n, nil
}

// ---- widget handlers ----------------------------------------------------------

func widgetStatus(err error) int {
	switch {
	case errors.Is(err, widget.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, widget.ErrDenied):
		return http.StatusForbidden
	}
	return http.StatusBadRequest
}

func (s *Server) handleWidgetHTML(w http.ResponseWriter, r *http.Request) {
	html, err := s.b.Widgets().HTML(r.PathValue("id"), s.user(r))
	if err != nil {
		writeError(w, widgetStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, html)
}

func (s *Server) handleWidgetJSON(w http.ResponseWriter, r *http.Request) {
	v, err := s.b.Widgets().View(r.PathValue("id"), s.user(r))
	if err != nil {
		writeError(w, widgetStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleWidgetFeed(w http.ResponseWriter, r *http.Request) {
	out, err := s.b.Widgets().Feed(r.PathValue("id"), s.user(r))
	if err != nil {
		writeError(w, widgetStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/rss+xml")
	w.Write(out)
}
