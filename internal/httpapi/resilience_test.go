// Overload and failure behavior over the wire: load shedding with 429
// + Retry-After, read-only rejection with a structured 503, the
// aggregated health report, and the threshold alert feed.
package httpapi_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

// newResilienceEnv builds a server over a System with the given
// resilience options.
func newResilienceEnv(t *testing.T, res gelee.ResilienceOptions) *env {
	t.Helper()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys, err := gelee.New(gelee.Options{
		Clock:           clock,
		EmbeddedPlugins: true,
		SyncActions:     true,
		Resilience:      res,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.HTTPHandler())
	t.Cleanup(func() { srv.Close(); sys.Close() })
	return &env{sys: sys, srv: srv, clock: clock}
}

// seedInstance defines the scenario model and instantiates it through
// the embedded facade, returning the instance id.
func seedInstance(t *testing.T, e *env) string {
	t.Helper()
	model := scenario.QualityPlan()
	if err := e.sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	e.sys.Sims.Wiki.CreatePage("D1.1", "owner", "x")
	snap, err := e.sys.Instantiate(model.URI, gelee.Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	return snap.ID
}

func TestAdminHealthHealthy(t *testing.T) {
	e := newResilienceEnv(t, gelee.ResilienceOptions{})
	var rep struct {
		State  string `json:"state"`
		Health struct {
			State string `json:"state"`
		} `json:"health"`
		Probes struct {
			Attempts int64 `json:"attempts"`
		} `json:"probes"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/health", "", nil, &rep); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if rep.State != "healthy" || rep.Health.State != "healthy" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSheddingReturns429AndRecovers(t *testing.T) {
	var depth atomic.Int64
	e := newResilienceEnv(t, gelee.ResilienceOptions{
		MaxQueueDepth:  4,
		ShedRetryAfter: 2 * time.Second,
		DepthSignal:    func() int { return int(depth.Load()) },
	})
	id := seedInstance(t, e)

	depth.Store(10)
	req, _ := http.NewRequest("POST", e.srv.URL+"/api/v1/instances/"+id+"/advance",
		strings.NewReader(`{"to":"elaboration","actor":"owner"}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated advance: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := jsonDecode(resp, &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "overloaded" || body.RetryAfterMS != 2000 {
		t.Fatalf("shed body = %+v", body)
	}

	// Reads are never shed.
	if code := e.call(t, "GET", "/api/v1/instances/"+id, "", nil, nil); code != http.StatusOK {
		t.Fatalf("read under shedding: status %d", code)
	}

	// Backlog drains below the resume level: mutations admitted again.
	depth.Store(0)
	if code := e.call(t, "POST", "/api/v1/instances/"+id+"/advance", "owner",
		map[string]any{"to": "elaboration"}, nil); code != http.StatusOK {
		t.Fatalf("recovered advance: status %d", code)
	}

	var rep struct {
		Admission struct {
			Shed int64 `json:"shed_total"`
		} `json:"admission"`
	}
	e.call(t, "GET", "/api/v1/admin/health", "", nil, &rep)
	if rep.Admission.Shed == 0 {
		t.Fatal("shed counter not surfaced in health report")
	}
}

// failSink is a journal that fails once armed: the WrapJournal seam
// turns the system's instance persistence into a broken disk mid-run.
type failSink struct {
	armed atomic.Bool
	fails atomic.Int64
}

func (f *failSink) Record(*runtime.JournalRecord) error {
	if !f.armed.Load() {
		return nil
	}
	f.fails.Add(1)
	return errors.New("injected: disk gone")
}

func TestReadOnlyModeRejectsWith503(t *testing.T) {
	sink := &failSink{}
	e := newResilienceEnv(t, gelee.ResilienceOptions{
		ReadOnlyAfter: 1,
		WrapJournal:   func(runtime.Journal) runtime.Journal { return sink },
	})
	id := seedInstance(t, e)

	// Break the disk, then advance: fail-forward journal semantics keep
	// the mutation in memory but surface the append error, and the
	// health machine trips read-only behind it.
	sink.armed.Store(true)
	if code := e.call(t, "POST", "/api/v1/instances/"+id+"/advance", "owner",
		map[string]any{"to": "elaboration"}, nil); code != http.StatusBadRequest {
		t.Fatalf("tripping advance: status %d, want 400 (journal error surfaced)", code)
	}

	// Now read-only: the next mutation gets a structured 503.
	resp, err := http.Post(e.srv.URL+"/api/v1/instances/"+id+"/advance", "application/json",
		strings.NewReader(`{"to":"internalreview","actor":"owner"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read-only advance: status %d, want 503", resp.StatusCode)
	}
	var body struct {
		Code string `json:"code"`
		Mode string `json:"mode"`
	}
	if err := jsonDecode(resp, &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "read_only" || body.Mode != "read-only" {
		t.Fatalf("read-only body = %+v", body)
	}

	// Reads still serve.
	if code := e.call(t, "GET", "/api/v1/instances/"+id, "", nil, nil); code != http.StatusOK {
		t.Fatalf("read in read-only mode: status %d", code)
	}
	// The health endpoint reports 503 so load balancers eject the node.
	var rep struct {
		State string `json:"state"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/health", "", nil, &rep); code != http.StatusServiceUnavailable {
		t.Fatalf("health status %d, want 503", code)
	}
	if rep.State != "read-only" {
		t.Fatalf("health state = %q", rep.State)
	}
	if sink.fails.Load() == 0 {
		t.Fatal("fault sink never exercised")
	}
}

func TestSOAPAdvanceGated(t *testing.T) {
	sink := &failSink{}
	e := newResilienceEnv(t, gelee.ResilienceOptions{
		ReadOnlyAfter: 1,
		WrapJournal:   func(runtime.Journal) runtime.Journal { return sink },
	})
	id := seedInstance(t, e)
	sink.armed.Store(true)
	if code := e.call(t, "POST", "/api/v1/instances/"+id+"/advance", "owner",
		map[string]any{"to": "elaboration"}, nil); code != http.StatusBadRequest {
		t.Fatalf("tripping advance: status %d, want 400 (journal error surfaced)", code)
	}

	envl := `<?xml version="1.0"?><Envelope><Body><advance xmlns="urn:gelee:lifecycle">` +
		`<instanceId>` + id + `</instanceId><to>internalreview</to><actor>owner</actor></advance></Body></Envelope>`
	resp, err := http.Post(e.srv.URL+"/soap", "text/xml", strings.NewReader(envl))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := readAll(t, resp)
	if !strings.Contains(raw, "Fault") || !strings.Contains(raw, "read-only") {
		t.Fatalf("SOAP advance in read-only mode returned %q", raw)
	}
}

func TestAlertsFireAndStream(t *testing.T) {
	var depth atomic.Int64
	e := newResilienceEnv(t, gelee.ResilienceOptions{
		MaxQueueDepth: 10,
		DepthSignal:   func() int { return int(depth.Load()) },
		AlertInterval: 5 * time.Millisecond,
	})

	// Subscribe to the SSE stream before the alert fires.
	streamReq, _ := http.NewRequest("GET", e.srv.URL+"/api/v1/admin/alerts/stream", nil)
	streamResp, err := http.DefaultClient.Do(streamReq)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream content type = %q", ct)
	}

	depth.Store(50) // over the 80% threshold of the watermark

	type lineResult struct {
		line string
		err  error
	}
	lines := make(chan lineResult, 64)
	go func() {
		sc := bufio.NewScanner(streamResp.Body)
		for sc.Scan() {
			lines <- lineResult{line: sc.Text()}
		}
		lines <- lineResult{err: sc.Err()}
	}()
	deadline := time.After(5 * time.Second)
	var data string
	for data == "" {
		select {
		case lr := <-lines:
			if lr.err != nil {
				t.Fatalf("stream read: %v", lr.err)
			}
			if strings.HasPrefix(lr.line, "data: ") && strings.Contains(lr.line, "commit-queue-depth") {
				data = lr.line
			}
		case <-deadline:
			t.Fatal("no commit-queue-depth alert on the SSE stream")
		}
	}
	if !strings.Contains(data, `"firing"`) {
		t.Fatalf("alert line = %q, want firing", data)
	}

	// The same alert is retained for polling clients.
	var polled struct {
		Alerts []struct {
			Rule  string `json:"rule"`
			State string `json:"state"`
		} `json:"alerts"`
	}
	if code := e.call(t, "GET", "/api/v1/admin/alerts?limit=10", "", nil, &polled); code != http.StatusOK {
		t.Fatalf("alerts poll: status %d", code)
	}
	found := false
	for _, a := range polled.Alerts {
		if a.Rule == "commit-queue-depth" && a.State == "firing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("polled alerts = %+v", polled.Alerts)
	}
}

func jsonDecode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
