package gelee

import (
	"strings"
	"testing"

	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/xmlcodec"
)

func TestImportExportModelXML(t *testing.T) {
	sys := newSystem(t, Options{})
	doc, err := xmlcodec.MarshalModel(scenario.QualityPlan())
	if err != nil {
		t.Fatal(err)
	}
	uri, err := sys.ImportModelXML("", doc)
	if err != nil {
		t.Fatal(err)
	}
	if uri != scenario.QualityPlanURI {
		t.Fatalf("imported uri = %q", uri)
	}
	out, err := sys.ExportModelXML(uri)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := xmlcodec.UnmarshalModel(doc)
	m2, err := xmlcodec.UnmarshalModel(out)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("import/export round trip drifted")
	}
	if _, err := sys.ExportModelXML("urn:ghost"); err == nil {
		t.Fatal("export of missing model accepted")
	}
	if _, err := sys.ImportModelXML("", []byte("<process>")); err == nil {
		t.Fatal("malformed XML imported")
	}
}

func TestImportExportActionTypeXML(t *testing.T) {
	sys := newSystem(t, Options{})
	doc := `<action_type uri="urn:custom:sign"><name>Digitally Sign</name>
	  <parameters><param bindingTime="call" required="yes"><name>certificate</name><value></value></param></parameters>
	</action_type>`
	uri, err := sys.ImportActionTypeXML("", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if uri != "urn:custom:sign" {
		t.Fatalf("uri = %q", uri)
	}
	// The imported type is browsable at design time (Fig. 3).
	found := false
	for _, at := range sys.ActionTypes("") {
		if at.URI == uri {
			found = true
		}
	}
	if !found {
		t.Fatal("imported type not browsable")
	}
	out, err := sys.ExportActionTypeXML(uri)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`uri="urn:custom:sign"`, "Digitally Sign", `bindingTime="call"`, `required="yes"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	if _, err := sys.ExportActionTypeXML("urn:ghost"); err == nil {
		t.Fatal("export of missing type accepted")
	}
	if _, err := sys.ImportActionTypeXML("", []byte("garbage")); err == nil {
		t.Fatal("garbage imported")
	}
}
