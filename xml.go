package gelee

import (
	"fmt"

	"github.com/liquidpub/gelee/internal/xmlcodec"
)

// ImportModelXML parses a Table I <process> document and stores it as a
// model, returning its URI.
func (s *System) ImportModelXML(actor string, doc []byte) (string, error) {
	m, err := xmlcodec.UnmarshalModel(doc)
	if err != nil {
		return "", err
	}
	if err := s.DefineModel(actor, m); err != nil {
		return "", err
	}
	return m.URI, nil
}

// ExportModelXML renders the stored model as a Table I document.
func (s *System) ExportModelXML(uri string) ([]byte, error) {
	m, ok := s.Model(uri)
	if !ok {
		return nil, fmt.Errorf("gelee: no model %q", uri)
	}
	return xmlcodec.MarshalModel(m)
}

// ImportActionTypeXML parses a Table II <action_type> document and
// registers it (without implementations — plug-ins add those).
func (s *System) ImportActionTypeXML(actor string, doc []byte) (string, error) {
	at, err := xmlcodec.UnmarshalActionType(doc)
	if err != nil {
		return "", err
	}
	if err := s.RegisterAction(actor, at); err != nil {
		return "", err
	}
	return at.URI, nil
}

// ExportActionTypeXML renders a registered action type as a Table II
// document.
func (s *System) ExportActionTypeXML(uri string) ([]byte, error) {
	at, ok := s.Registry.Type(uri)
	if !ok {
		return nil, fmt.Errorf("gelee: no action type %q", uri)
	}
	return xmlcodec.MarshalActionType(at)
}
