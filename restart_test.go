package gelee

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

// restartOpts is the hosted-deployment configuration under test:
// journaled data tier plus the durable instance runtime.
func restartOpts(dir string, clock *vclock.Fake) Options {
	return Options{
		DataDir:          dir,
		Clock:            clock,
		EmbeddedPlugins:  true,
		SyncActions:      true,
		PersistInstances: true,
	}
}

// seedWorkload drives a representative mixed workload and returns the
// instance ids: happy-path moves with real plug-in actions, a
// deviation, an annotation, a pending proposal, an accepted migration.
func seedWorkload(t testing.TB, sys *System) []string {
	t.Helper()
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("D1.%d", i+1)
		if _, err := sys.Sims.Wiki.CreatePage(id, "owner", "= "+id+" ="); err != nil {
			t.Fatal(err)
		}
		snap, err := sys.Instantiate(model.URI, Ref{URI: "http://wiki.liquidpub.org/pages/" + id, Type: "mediawiki"},
			"owner", map[string]map[string]string{
				"http://www.liquidpub.org/a/notify": {"reviewers": "alice,bob"},
				"http://www.liquidpub.org/a/post":   {"site": "project.liquidpub.org"},
			})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
		for j := 0; j <= i; j++ {
			if _, err := sys.Advance(snap.ID, scenario.HappyPath[j], "owner", AdvanceOptions{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := sys.Advance(ids[0], "publication", "owner", AdvanceOptions{Annotation: "deadline deviation"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Annotate(ids[1], "owner", "waiting on partner text"); err != nil {
		t.Fatal(err)
	}
	v2 := scenario.QualityPlan()
	v2.Phases = append(v2.Phases, &Phase{ID: "archival", Name: "Archival"})
	if err := sys.ProposeChange(ids[2], "designer", v2, "add archival"); err != nil {
		t.Fatal(err)
	}
	if err := sys.ProposeChange(ids[3], "designer", v2, "add archival"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AcceptChange(ids[3], "owner", "archival"); err != nil {
		t.Fatal(err)
	}
	return ids
}

func snapshotJSON(t testing.TB, sys *System) []string {
	t.Helper()
	var out []string
	for _, snap := range sys.Instances() {
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(data))
	}
	return out
}

// TestInstanceRecoveryAcrossRestart: a clean close/reopen cycle brings
// back every instance — token positions, histories, executions,
// pending changes — plus working indexes, counters and phase stats.
func TestInstanceRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys := newSystem(t, restartOpts(dir, clock))
	ids := seedWorkload(t, sys)
	want := snapshotJSON(t, sys)
	wantSums, err := json.Marshal(sys.Summaries())
	if err != nil {
		t.Fatal(err)
	}
	wantPhase, _ := sys.PhaseStats(ids[0], clock.Now())
	wantLog := sys.ExecutionLog().Len()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2 := newSystem(t, restartOpts(dir, clock))
	rec := sys2.RecoveryStats()
	if rec.Instances != len(ids) {
		t.Fatalf("recovered %d instances, want %d", rec.Instances, len(ids))
	}
	if rec.Records == 0 || rec.Events == 0 || rec.Executions == 0 {
		t.Fatalf("recovery stats empty: %+v", rec)
	}
	got := snapshotJSON(t, sys2)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("instances diverged after restart:\nbefore %v\nafter  %v", want, got)
	}
	gotSums, err := json.Marshal(sys2.Summaries())
	if err != nil {
		t.Fatal(err)
	}
	if string(wantSums) != string(gotSums) {
		t.Fatalf("summaries diverged:\nbefore %s\nafter  %s", wantSums, gotSums)
	}
	if sys2.ExecutionLog().Len() != wantLog {
		t.Fatalf("execution log = %d entries, want %d", sys2.ExecutionLog().Len(), wantLog)
	}
	gotPhase, ok := sys2.PhaseStats(ids[0], clock.Now())
	if !ok || !reflect.DeepEqual(wantPhase, gotPhase) {
		t.Fatalf("phase stats diverged: %v vs %v", wantPhase, gotPhase)
	}
	// Indexes answer queries and the recovered instances keep moving.
	if got := sys2.Runtime.ByResource("http://wiki.liquidpub.org/pages/D1.1"); len(got) != 1 {
		t.Fatalf("ByResource after restart = %d", len(got))
	}
	if snap, _ := sys2.Instance(ids[2]); snap.Pending == nil {
		t.Fatal("pending proposal lost")
	}
	if _, err := sys2.AcceptChange(ids[2], "owner", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Advance(ids[1], "internalreview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	// The admin stats advertise the persistence seam.
	st := sys2.RuntimeStats().Persistence
	if !st.Enabled || st.Recovered.Instances != len(ids) {
		t.Fatalf("persistence stats = %+v", st)
	}
	if ss := sys2.StoreStats(); ss.Instances == nil || ss.Instances.Appends == 0 {
		t.Fatalf("store stats missing instance engine: %+v", ss.Instances)
	}
}

// TestInstanceRecoveryAfterKill: no Close at all — the System is
// abandoned mid-life and the journal even gets a torn partial batch
// (what a kill -9 mid-write leaves). The restarted system must recover
// exactly the acknowledged state and keep serving.
func TestInstanceRecoveryAfterKill(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys, err := New(restartOpts(dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	// No sys.Close, ever: every acknowledged mutation must already be
	// in the journal file.
	ids := seedWorkload(t, sys)
	sys.Runtime.WaitDispatch()
	want := snapshotJSON(t, sys)

	// Torn tail: a batch cut short mid-write.
	jf := filepath.Join(dir, "instances", "gelee.journal")
	f, err := os.OpenFile(jf, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":424242,"repo":"instances","op":"append","id":"li-0`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sys2 := newSystem(t, restartOpts(dir, clock))
	got := snapshotJSON(t, sys2)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("killed-process recovery diverged:\nbefore %v\nafter  %v", want, got)
	}
	if _, err := sys2.Advance(ids[0], "eureview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestRestartWithoutPersistInstances pins the paper's original
// data-tier split as the opt-out: definitions survive, instances are
// RAM-only.
func TestRestartWithoutPersistInstances(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	opts := restartOpts(dir, clock)
	opts.PersistInstances = false
	sys := newSystem(t, opts)
	seedWorkload(t, sys)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2 := newSystem(t, opts)
	if got := sys2.InstanceCount(); got != 0 {
		t.Fatalf("instances without persistence = %d, want 0", got)
	}
	if st := sys2.RuntimeStats().Persistence; st.Enabled {
		t.Fatal("persistence reported enabled")
	}
}

// TestTimelineBackfillFromExecutionLog: with a small in-memory ring,
// the timeline serves ring-truncated prefixes from the journaled
// execution log — the full record stays addressable, paging included.
func TestTimelineBackfillFromExecutionLog(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	opts := Options{Clock: clock, MaxEventsInMemory: 10}
	sys := newSystem(t, opts)
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Instantiate(model.URI, Ref{URI: "urn:backfill:r1", Type: "url"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	const notes = 40
	for i := 0; i < notes; i++ {
		if err := sys.Annotate(snap.ID, "owner", fmt.Sprintf("note %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	total := notes + 1 // created + annotations

	// The raw runtime window is truncated…
	raw, _ := sys.Runtime.Events(snap.ID, 0, 0)
	if !raw.Truncated || raw.OldestSeq <= 1 {
		t.Fatalf("test did not exercise truncation: %+v", raw)
	}
	// …but the facade's view backfills the prefix from the log.
	page, ok := sys.Events(snap.ID, 0, 0)
	if !ok {
		t.Fatal(err)
	}
	if page.Truncated {
		t.Fatalf("backfilled page still truncated: %+v", page)
	}
	if len(page.Events) != total || page.Backfilled != raw.OldestSeq-1 {
		t.Fatalf("backfilled page: %d events (want %d), backfilled %d (want %d)",
			len(page.Events), total, page.Backfilled, raw.OldestSeq-1)
	}
	for i, ev := range page.Events {
		if ev.Seq != i+1 {
			t.Fatalf("stitched seq gap at %d: %d", i, ev.Seq)
		}
	}
	if page.Events[0].Kind != runtime.EventCreated {
		t.Fatalf("first stitched event = %+v", page.Events[0])
	}

	// Paged reads inside the truncated prefix work too.
	mid, _ := sys.Events(snap.ID, 3, 5)
	if len(mid.Events) != 5 || mid.Events[0].Seq != 4 || mid.Truncated {
		t.Fatalf("mid-prefix page: %+v", mid)
	}
	// A page starting in retained territory never touches the log.
	tail, _ := sys.Events(snap.ID, total-3, 0)
	if tail.Backfilled != 0 || len(tail.Events) != 3 {
		t.Fatalf("tail page: %+v", tail)
	}
	// The cockpit timeline rides the same stitched path.
	tl, ok := sys.Monitor().TimelinePage(snap.ID, 0, 8)
	if !ok || len(tl.Entries) != 8 || tl.Entries[0].Seq != 1 || tl.Backfilled == 0 {
		t.Fatalf("monitor timeline page: %+v", tl)
	}
}

// TestSummariesPageCursor walks the population by creation-seq cursor
// and expects the pages to tile the full listing exactly.
func TestSummariesPageCursor(t *testing.T) {
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	const n = 9
	for i := 0; i < n; i++ {
		if _, err := sys.Instantiate(model.URI, Ref{URI: fmt.Sprintf("urn:page:r%d", i), Type: "url"}, "owner", nil); err != nil {
			t.Fatal(err)
		}
	}
	all := sys.Summaries()
	var walked []string
	var after int64
	pages := 0
	for {
		page := sys.SummariesPage(after, 4)
		if page.Total != n {
			t.Fatalf("total = %d, want %d", page.Total, n)
		}
		for _, s := range page.Summaries {
			walked = append(walked, s.ID)
		}
		pages++
		if page.NextAfter == 0 {
			break
		}
		after = page.NextAfter
	}
	if pages != 3 {
		t.Fatalf("walked %d pages, want 3", pages)
	}
	if len(walked) != n {
		t.Fatalf("walked %d summaries, want %d", len(walked), n)
	}
	for i, s := range all {
		if walked[i] != s.ID {
			t.Fatalf("page order diverged at %d: %s vs %s", i, walked[i], s.ID)
		}
	}
	// Paging past the tail is empty, cursor 0.
	if page := sys.SummariesPage(all[n-1].Seq, 4); len(page.Summaries) != 0 || page.NextAfter != 0 {
		t.Fatalf("past-tail page: %+v", page)
	}
}
