package gelee

import (
	"net/http"

	"github.com/liquidpub/gelee/internal/httpapi"
)

// UserExists reports whether an account is registered — part of the
// HTTP layer's Backend contract.
func (s *System) UserExists(name string) bool {
	_, ok := s.ACL.User(name)
	return ok
}

// HTTPHandler returns the hosted-service HTTP surface (REST + SOAP +
// widgets + monitoring). Authentication follows Options.Auth.
func (s *System) HTTPHandler() http.Handler {
	return httpapi.New(s, httpapi.Options{RequireAuth: s.opts.Auth})
}

// Compile-time check that System satisfies the HTTP backend contract.
var _ httpapi.Backend = (*System)(nil)
