module github.com/liquidpub/gelee

go 1.23
