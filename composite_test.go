package gelee

import (
	"strings"
	"testing"

	"github.com/liquidpub/gelee/internal/scenario"
)

// TestCompositeDeliverable exercises the §VI future-work extension end
// to end through the facade: a "State of the Art" deliverable composed
// of a main wiki page and a references doc, each with its own quality
// plan instance; the composite carries its own lifecycle and the owner
// consults the rollup before submitting.
func TestCompositeDeliverable(t *testing.T) {
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}

	// Components in their own managing applications.
	sys.Sims.Wiki.CreatePage("SOTA-main", "alice", "main text")
	sys.Sims.GDocs.Create("SOTA-refs", "References", "alice", "refs")
	main := Ref{URI: "http://wiki.liquidpub.org/pages/SOTA-main", Type: "mediawiki"}
	refs := Ref{URI: "http://docs.liquidpub.org/docs/SOTA-refs", Type: "gdoc"}
	if _, err := sys.Sims.Composites.Create("sota", "State of the Art (D1.1)", main, refs); err != nil {
		t.Fatal(err)
	}

	// Each component runs the quality plan independently.
	var compIDs []string
	for _, ref := range []Ref{main, refs} {
		snap, err := sys.Instantiate(model.URI, ref, "alice", map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "bob"},
		})
		if err != nil {
			t.Fatal(err)
		}
		compIDs = append(compIDs, snap.ID)
	}
	// The composite itself is a lifecycle-managed resource too.
	compositeRef := Ref{URI: "urn:liquidpub:composites:sota", Type: "composite"}
	top, err := sys.Instantiate(model.URI, compositeRef, "alice", map[string]map[string]string{
		"http://www.liquidpub.org/a/notify": {"reviewers": "carol"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rollup: one component active, none completed.
	sys.Advance(compIDs[0], "elaboration", "alice", AdvanceOptions{})
	r, err := sys.CompositeRollup("sota")
	if err != nil {
		t.Fatal(err)
	}
	if r.Components != 2 || r.AllCompleted {
		t.Fatalf("rollup = %+v", r)
	}

	// Finish both components, then the composite.
	for _, id := range compIDs {
		if _, err := sys.Advance(id, "accepted", "alice", AdvanceOptions{Annotation: "fast-track"}); err != nil {
			t.Fatal(err)
		}
	}
	r, _ = sys.CompositeRollup("sota")
	if !r.AllCompleted || r.Completed != 2 {
		t.Fatalf("rollup after completion = %+v", r)
	}

	// The composite's widget shows the composite as the managed resource.
	html, err := sys.Widgets().HTML(top.ID, "anyone")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"State of the Art (D1.1)", "composite of 2 resources", "2 completed"} {
		if !strings.Contains(html, want) {
			t.Errorf("composite widget missing %q:\n%s", want, html)
		}
	}
	// The transparent rendering lists each component with its phase.
	rend, err := sys.Resources.Render(compositeRef)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SOTA-main", "References", "Accepted"} {
		if !strings.Contains(rend.HTML, want) {
			t.Errorf("composite rendering missing %q:\n%s", want, rend.HTML)
		}
	}
	if _, err := sys.CompositeRollup("ghost"); err == nil {
		t.Fatal("rollup of unknown composite accepted")
	}
}
