// Benchmarks regenerating every table and figure of the paper — one
// Benchmark per experiment row of DESIGN.md §4 (E1..E8), plus the hot
// micro paths. Run:
//
//	go test -bench=. -benchmem
//
// cmd/geleebench prints the companion paper-vs-measured tables recorded
// in EXPERIMENTS.md.
package gelee

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime/metrics"
	"sync/atomic"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	rtpkg "github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/store"
	"github.com/liquidpub/gelee/internal/vclock"
	"github.com/liquidpub/gelee/internal/wfengine"
	"github.com/liquidpub/gelee/internal/xmlcodec"
)

// benchSystem builds an embedded system with the quality plan defined
// and the Fig. 1 resources created.
func benchSystem(b *testing.B) *System {
	b.Helper()
	sys, err := New(Options{
		Clock:           vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC)),
		EmbeddedPlugins: true,
		SyncActions:     true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	if err := sys.DefineModel("", scenario.QualityPlan()); err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchBindings() map[string]map[string]string {
	return map[string]map[string]string{
		"http://www.liquidpub.org/a/notify": {"reviewers": "epfl-reviewer,inria-reviewer"},
		"http://www.liquidpub.org/a/post":   {"site": "project.liquidpub.org"},
	}
}

// BenchmarkFig1_LifecycleExecution (E1): one complete Fig. 1 deliverable
// lifecycle — instantiate on a wiki page, walk the happy path, all nine
// figure actions executing against the simulated managing application.
// The system is rebuilt every 512 lifecycles so the measured cost is one
// lifecycle, not the growing live heap of thousands of retained ones.
func BenchmarkFig1_LifecycleExecution(b *testing.B) {
	var sys *System
	ref := Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
	reset := func() {
		if sys != nil {
			sys.Close()
		}
		sys = benchSystem(b)
		sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	}
	reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%512 == 511 {
			b.StopTimer()
			reset()
			b.StartTimer()
		}
		snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "owner", benchBindings())
		if err != nil {
			b.Fatal(err)
		}
		for _, phase := range scenario.HappyPath {
			if _, err := sys.Advance(snap.ID, phase, "owner", AdvanceOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTableI_ProcessXML (E2): marshal + parse the Table I lifecycle
// document at the paper's size and at 5×/20× synthetic sizes.
func BenchmarkTableI_ProcessXML(b *testing.B) {
	sizes := []struct {
		name   string
		phases int
	}{{"fig1", 0}, {"35phases", 35}, {"140phases", 140}}
	for _, size := range sizes {
		b.Run(size.name, func(b *testing.B) {
			m := scenario.QualityPlan()
			for i := 0; i < size.phases; i++ {
				id := fmt.Sprintf("extra%d", i)
				m.Phases = append(m.Phases, &core.Phase{ID: id, Name: "Extra " + id})
				m.Transitions = append(m.Transitions, core.Transition{From: "elaboration", To: id})
			}
			doc, err := xmlcodec.MarshalModel(m)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := xmlcodec.MarshalModel(m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := xmlcodec.UnmarshalModel(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableII_ActionTypeXML (E3): marshal + parse the Table II
// action type document.
func BenchmarkTableII_ActionTypeXML(b *testing.B) {
	at := ActionType{
		URI: "http://www.liquidpub.org/a/chr", Name: "Change Access Rights",
		Params: []Param{
			{ID: "mode", BindingTime: core.BindAny, Required: true},
			{ID: "note", BindingTime: core.BindCall},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := xmlcodec.MarshalActionType(at)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xmlcodec.UnmarshalActionType(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_EndToEndProgression (E4): the full hosted round trip —
// instantiate and advance twice over the REST API, actions and
// callbacks included.
func BenchmarkFig2_EndToEndProgression(b *testing.B) {
	sys := benchSystem(b)
	sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	srv := httptest.NewServer(sys.HTTPHandler())
	b.Cleanup(srv.Close)

	post := func(path string, body any) {
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			b.Fatalf("%s: %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var inst struct {
			ID string `json:"id"`
		}
		data, _ := json.Marshal(map[string]any{
			"model_uri": scenario.QualityPlanURI,
			"resource":  map[string]string{"uri": "http://wiki.liquidpub.org/pages/D1.1", "type": "mediawiki"},
			"owner":     "owner",
			"bindings":  benchBindings(),
		})
		resp, err := http.Post(srv.URL+"/api/v1/instances", "application/json", bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&inst)
		resp.Body.Close()
		post("/api/v1/instances/"+inst.ID+"/advance", map[string]any{"to": "elaboration"})
		post("/api/v1/instances/"+inst.ID+"/advance", map[string]any{"to": "internalreview"})
	}
}

// BenchmarkFig3_ActionBrowsing (E5): design-time (all) vs run-time
// (type-filtered) browse over a 200-type library across 5 resource
// types.
func BenchmarkFig3_ActionBrowsing(b *testing.B) {
	sys := benchSystem(b)
	resourceTypes := []string{"gdoc", "mediawiki", "svn", "zoho", "flickr"}
	for i := 0; i < 200; i++ {
		at := ActionType{URI: fmt.Sprintf("urn:bench:act%d", i), Name: fmt.Sprintf("Action %d", i)}
		impl := Implementation{
			ResourceType: resourceTypes[i%len(resourceTypes)],
			Endpoint:     "http://x/act", Protocol: "rest",
		}
		if err := sys.RegisterAction("", at, impl); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("design-time-all", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := sys.ActionTypes(""); len(got) < 200 {
				b.Fatalf("browse = %d", len(got))
			}
		}
	})
	b.Run("runtime-filtered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := sys.ActionTypes("gdoc"); len(got) < 40 {
				b.Fatalf("browse = %d", len(got))
			}
		}
	})
}

// BenchmarkFig4_WidgetRender (E6): the integrated execution widget —
// lifecycle strip + transparent resource rendering, HTML and JSON.
func BenchmarkFig4_WidgetRender(b *testing.B) {
	sys := benchSystem(b)
	sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	snap, err := sys.Instantiate(scenario.QualityPlanURI,
		Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}, "owner", benchBindings())
	if err != nil {
		b.Fatal(err)
	}
	sys.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	b.Run("html", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Widgets().HTML(snap.ID, "owner"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Widgets().View(snap.ID, "owner"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("feed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Widgets().Feed(snap.ID, "owner"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// wfQualityPlan is the Fig. 1 lifecycle as a rigid wfengine definition.
func wfQualityPlan() wfengine.Definition {
	return wfengine.Definition{
		ID:      "eu-deliverable",
		Initial: "elaboration",
		Final:   map[string]bool{"accepted": true, "rejected": true},
		Next: map[string][]string{
			"elaboration":    {"internalreview"},
			"internalreview": {"elaboration", "finalassembly"},
			"finalassembly":  {"eureview"},
			"eureview":       {"publication", "finalassembly", "rejected"},
			"publication":    {"accepted"},
		},
	}
}

// BenchmarkE7_LightCouplingAblation (E7): the cost of the two management
// scenarios the paper motivates, in Gelee vs the prescriptive baseline.
//
// Deviation: in Gelee one Advance call; in the baseline the deviation is
// impossible without redeploying an edited definition and migrating all
// instances.
//
// Model change over N instances: Gelee propagates proposals (owners
// migrate by state only); the baseline replays every instance trace.
func BenchmarkE7_LightCouplingAblation(b *testing.B) {
	for _, n := range []int{35, 350} {
		b.Run(fmt.Sprintf("gelee-deviation-%d", n), func(b *testing.B) {
			sys := benchSystem(b)
			sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
			ref := Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
			ids := make([]string, n)
			for i := 0; i < n; i++ {
				snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "owner", benchBindings())
				if err != nil {
					b.Fatal(err)
				}
				sys.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
				ids[i] = snap.ID
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The deviation: skip straight to EU review. One call,
				// other instances untouched.
				id := ids[i%n]
				if _, err := sys.Advance(id, "eureview", "owner", AdvanceOptions{Annotation: "deadline"}); err != nil {
					b.Fatal(err)
				}
				sys.Advance(id, "elaboration", "owner", AdvanceOptions{Annotation: "reset"})
			}
		})
		b.Run(fmt.Sprintf("baseline-deviation-%d", n), func(b *testing.B) {
			// The baseline cannot deviate: the definition must be edited
			// to add the edge and every instance migrated.
			eng := wfengine.New()
			if _, err := eng.Deploy(wfQualityPlan()); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := eng.Start("eu-deliverable"); err != nil {
					b.Fatal(err)
				}
			}
			withEdge := wfQualityPlan()
			withEdge.Next["elaboration"] = append(withEdge.Next["elaboration"], "eureview")
			withoutEdge := wfQualityPlan()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := withEdge
				if i%2 == 1 {
					d = withoutEdge
				}
				if _, err := eng.Redeploy(d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gelee-modelchange-%d", n), func(b *testing.B) {
			sys := benchSystem(b)
			sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
			ref := Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
			ids := make([]string, n)
			for i := 0; i < n; i++ {
				snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "owner", benchBindings())
				if err != nil {
					b.Fatal(err)
				}
				sys.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
				ids[i] = snap.ID
			}
			v2 := scenario.QualityPlan()
			v2.Phases = append(v2.Phases, &core.Phase{ID: "archival", Name: "Archival"})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Propagate("", v2, "bench"); err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					if _, err := sys.AcceptChange(id, "owner", ""); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("baseline-modelchange-%d", n), func(b *testing.B) {
			eng := wfengine.New()
			if _, err := eng.Deploy(wfQualityPlan()); err != nil {
				b.Fatal(err)
			}
			// Instances with 6-step traces: replay cost scales with
			// history length, unlike Gelee's state-only migration.
			for i := 0; i < n; i++ {
				in, _ := eng.Start("eu-deliverable")
				for _, step := range []string{"internalreview", "elaboration", "internalreview", "finalassembly", "eureview"} {
					if err := eng.Complete(in.ID, step); err != nil {
						b.Fatal(err)
					}
				}
			}
			d := wfQualityPlan()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Redeploy(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_MonitoringCockpit (E8): cockpit queries over the LiquidPub
// project (35 deliverables) and 10×/100× scale.
func BenchmarkE8_MonitoringCockpit(b *testing.B) {
	for _, n := range []int{35, 350, 3500} {
		b.Run(fmt.Sprintf("summary-%d", n), func(b *testing.B) {
			sys := benchSystem(b)
			sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
			ref := Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
			for i := 0; i < n; i++ {
				snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "owner", benchBindings())
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j <= i%len(scenario.HappyPath); j++ {
					sys.Advance(snap.ID, scenario.HappyPath[j], "owner", AdvanceOptions{})
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := sys.Monitor().Summarize()
				if sum.Total != n {
					b.Fatalf("total = %d", sum.Total)
				}
				_ = sys.Monitor().Late()
			}
		})
	}
}

// ---- micro-benchmarks on the hot paths ---------------------------------------

func BenchmarkRuntimeAdvance(b *testing.B) {
	// Advance returns a full history snapshot, so its cost grows with the
	// instance's event count; re-instantiate every 256 moves to measure
	// the steady short-history case.
	sys := benchSystem(b)
	sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	ref := Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
	newInstance := func() string {
		snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "owner", benchBindings())
		if err != nil {
			b.Fatal(err)
		}
		return snap.ID
	}
	id := newInstance()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%256 == 255 {
			b.StopTimer()
			id = newInstance()
			b.StartTimer()
		}
		// elaboration has no actions: this isolates pure token movement.
		if _, err := sys.Advance(id, "elaboration", "owner", AdvanceOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRuntime builds a bare runtime — no facade, no HTTP, no journal,
// no observer — so the parallel benchmarks measure the runtime's own
// locking and nothing else. The wall clock is deliberate: the fake
// clock serializes every event timestamp on its own mutex, which would
// mask exactly the contention these benchmarks exist to expose.
func benchRuntime(b *testing.B) *rtpkg.Runtime {
	b.Helper()
	rt, err := rtpkg.New(rtpkg.Config{
		Registry:    actionlib.NewRegistry(),
		SyncActions: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// mutexWaitSeconds reads the cumulative time goroutines have spent
// blocked on sync.Mutex/RWMutex — the hardware-independent measure of
// lock contention (wall clock on an oversubscribed host measures the
// scheduler, not the locks).
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindFloat64 {
		return sample[0].Value.Float64()
	}
	return 0
}

// BenchmarkParallelAdvance drives token moves on *disjoint* instances
// from GOMAXPROCS goroutines against the bare runtime (no HTTP, no
// journal): the measurement behind the runtime-sharding work. Every
// goroutine owns its own instances, so with striped instance locks the
// moves share no lock at all; under a single runtime-wide mutex every
// move queues. Besides ns/op it reports mutex-wait-ns/op — time spent
// blocked on locks per move — which exposes the contention even when
// -cpu exceeds the physical core count. Instances are re-created every
// 256 moves so the measured cost is a steady short-history Advance,
// not an ever-growing snapshot copy.
func BenchmarkParallelAdvance(b *testing.B) {
	rt := benchRuntime(b)
	model := scenario.QualityPlan()
	var next atomic.Int64
	newInstance := func() string {
		n := next.Add(1)
		ref := Ref{URI: fmt.Sprintf("urn:bench:res-%d", n), Type: "mediawiki"}
		snap, err := rt.Instantiate(model, ref, "owner", nil)
		if err != nil {
			b.Fatal(err)
		}
		return snap.ID
	}
	b.ReportAllocs()
	wait0 := mutexWaitSeconds()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := newInstance()
		i := 0
		for pb.Next() {
			if i%256 == 255 {
				id = newInstance()
			}
			i++
			// elaboration has no actions: pure token movement.
			if _, err := rt.Advance(id, "elaboration", "owner", rtpkg.AdvanceOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric((mutexWaitSeconds()-wait0)*1e9/float64(b.N), "mutex-wait-ns/op")
}

// BenchmarkByResourceIndexed measures the runtime's by-resource query
// over a populated deployment: 2048 instances spread across 256
// resource URIs, 8 instances each. With the secondary index the query
// touches only the 8 matches; the pre-sharding runtime scanned and
// deep-copied nothing it returned but still walked all 2048.
func BenchmarkByResourceIndexed(b *testing.B) {
	rt := benchRuntime(b)
	model := scenario.QualityPlan()
	const uris, perURI = 256, 8
	for i := 0; i < uris*perURI; i++ {
		ref := Ref{URI: fmt.Sprintf("urn:bench:res-%d", i%uris), Type: "mediawiki"}
		if _, err := rt.Instantiate(model, ref, "owner", nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := rt.ByResource(fmt.Sprintf("urn:bench:res-%d", i%uris))
		if len(got) != perURI {
			b.Fatalf("ByResource = %d instances, want %d", len(got), perURI)
		}
	}
}

// BenchmarkInstanceListing compares the full-snapshot listing (deep
// copies of every event history) against the summary projection behind
// GET /api/v1/instances, over 1024 instances with real histories.
func BenchmarkInstanceListing(b *testing.B) {
	rt := benchRuntime(b)
	model := scenario.QualityPlan()
	for i := 0; i < 1024; i++ {
		ref := Ref{URI: fmt.Sprintf("urn:bench:res-%d", i), Type: "mediawiki"}
		snap, err := rt.Instantiate(model, ref, "owner", nil)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j <= i%len(scenario.HappyPath); j++ {
			if _, err := rt.Advance(snap.ID, scenario.HappyPath[j], "owner", rtpkg.AdvanceOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("instances-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := rt.Instances(); len(got) != 1024 {
				b.Fatalf("instances = %d", len(got))
			}
		}
	})
	b.Run("summaries", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := rt.Summaries(); len(got) != 1024 {
				b.Fatalf("summaries = %d", len(got))
			}
		}
	})
}

func BenchmarkModelCloneAndFingerprint(b *testing.B) {
	m := scenario.QualityPlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		if c.Fingerprint() != m.Fingerprint() {
			b.Fatal("fingerprint mismatch")
		}
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	repo := store.MustRepo[map[string]string](st, "bench")
	if err := st.Load(); err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	val := map[string]string{"phase": "elaboration", "actor": "owner"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := repo.Put(fmt.Sprintf("k%d", i%1000), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalDurableConcurrentPut is the tentpole measurement of
// the engine refactor: concurrent durable writes under the per-append
// fsync baseline vs the group-commit writer. Same workload, same
// durability guarantee (no Put returns before its entry is fsynced);
// group commit amortizes the fsync across the batch.
func BenchmarkJournalDurableConcurrentPut(b *testing.B) {
	modes := []struct {
		name string
		opts store.Options
	}{
		{"per-append-fsync", store.Options{SyncEveryAppend: true}},
		{"group-commit", store.Options{Sync: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			repo := store.MustRepo[map[string]string](st, "bench")
			if err := st.Load(); err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			val := map[string]string{"phase": "elaboration", "actor": "owner"}
			var next atomic.Int64
			b.ReportAllocs()
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := next.Add(1)
					if err := repo.Put(fmt.Sprintf("k%d", k%4096), val); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			stats := st.Stats()
			b.ReportMetric(float64(stats.Engine.Syncs), "fsyncs")
			if stats.Engine.Batches > 0 {
				b.ReportMetric(float64(stats.Engine.Appends)/float64(stats.Engine.Batches), "appends/batch")
			}
		})
	}
}

// BenchmarkConcurrentInstantiateAdvance drives the whole stack — facade,
// runtime, sharded repositories, execution log, journal engine — from
// many goroutines at once, persistent and durable, comparing the
// per-append fsync baseline against batched group commit.
func BenchmarkConcurrentInstantiateAdvance(b *testing.B) {
	modes := []struct {
		name string
		opts Options
	}{
		{"per-append-fsync", Options{SyncEveryAppend: true}},
		{"group-commit", Options{SyncJournal: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			opts := mode.opts
			opts.DataDir = b.TempDir()
			opts.EmbeddedPlugins = true
			opts.SyncActions = true
			sys, err := New(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { sys.Close() })
			if err := sys.DefineModel("", scenario.QualityPlan()); err != nil {
				b.Fatal(err)
			}
			sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
			ref := Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
			b.ReportAllocs()
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "owner", benchBindings())
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := sys.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
