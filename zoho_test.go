package gelee

import (
	"testing"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/plugin"
	"github.com/liquidpub/gelee/internal/plugin/gdocsim"
	"github.com/liquidpub/gelee/internal/scenario"
)

// zohoPlugin wraps a second, independent document service under the
// "zoho" resource type — the paper's §IV.C point that "the same
// lifecycle and the same actions" run on "Google Docs and Zoho for
// documents" by mapping the same action names to different
// implementations per resource type.
type zohoPlugin struct{ *gdocsim.Adapter }

func (zohoPlugin) Type() string { return "zoho" }

func TestZohoSecondDocumentService(t *testing.T) {
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}

	// An entirely separate document store playing the Zoho role.
	zohoSvc := gdocsim.NewService(nil)
	zohoSvc.Create("Z1", "Zoho Writer Doc", "alice", "zoho draft")
	adapter := gdocsim.NewAdapter(zohoSvc, sys.Runtime, sys.Sims.Notify)
	if err := sys.Resources.Register(zohoPlugin{adapter}); err != nil {
		t.Fatal(err)
	}
	// Register the SAME action types for the new resource type, with the
	// zoho endpoints.
	if err := plugin.RegisterAll(sys.Registry, "zoho", "local://zoho/actions",
		actionlib.ProtocolLocal, adapter.Registrations()); err != nil {
		t.Fatal(err)
	}
	adapter.BindLocal(sys.Local, "local://zoho/actions")

	// The unchanged Fig. 1 lifecycle now runs on a zoho document.
	snap, err := sys.Instantiate(model.URI, Ref{URI: "zoho://writer/Z1", Type: "zoho"}, "alice",
		map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "bob"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Unresolved) != 0 {
		t.Fatalf("unresolved actions on zoho: %v", snap.Unresolved)
	}
	sys.Advance(snap.ID, "elaboration", "alice", AdvanceOptions{})
	if _, err := sys.Advance(snap.ID, "internalreview", "alice", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _ := sys.Instance(snap.ID)
	for _, ex := range got.Executions {
		if !ex.Terminal || ex.LastStatus != "completed" {
			t.Fatalf("zoho execution %+v", ex)
		}
	}
	// The side effects landed in the zoho store, not the gdoc store.
	zdoc, _ := zohoSvc.Get("Z1")
	if zdoc.Mode != "reviewers-only" || zdoc.ACL["bob"] != gdocsim.AccessCommenter {
		t.Fatalf("zoho doc = mode %q, acl %v", zdoc.Mode, zdoc.ACL)
	}
	if got := len(sys.Sims.GDocs.List()); got != 0 {
		t.Fatalf("gdoc store touched: %d docs", got)
	}
	// Fig. 3 runtime browse now lists zoho among the filterable types.
	if got := len(sys.ActionTypes("zoho")); got != 5 {
		t.Fatalf("zoho action types = %d", got)
	}
	// Both doc types qualify for a lifecycle using the doc actions
	// (§IV.A applicability).
	applicable := sys.Registry.Applicability([]string{
		plugin.ActionChangeAccessRights, plugin.ActionNotifyReviewers,
	})
	found := map[string]bool{}
	for _, rt := range applicable {
		found[rt] = true
	}
	if !found["gdoc"] || !found["zoho"] || !found["mediawiki"] {
		t.Fatalf("applicability = %v", applicable)
	}
	// The zoho resource renders through its own plug-in.
	rend, err := sys.Resources.Render(Ref{URI: "zoho://writer/Z1", Type: "zoho"})
	if err != nil {
		t.Fatal(err)
	}
	if rend.Title != "Zoho Writer Doc" {
		t.Fatalf("rendering = %+v", rend)
	}
}
