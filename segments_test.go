package gelee

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// TestRestartReplayBoundedAfterFold is the PR's acceptance test at the
// system level: once Compact folds the journals, a restart replays
// only the snapshots plus the unfolded tail — the replayed-record
// count stops growing with history — and the recovered state is
// byte-identical to the pre-restart state.
func TestRestartReplayBoundedAfterFold(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys := newSystem(t, restartOpts(dir, clock))
	ids := seedWorkload(t, sys)
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	want := snapshotJSON(t, sys)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2 := newSystem(t, restartOpts(dir, clock))
	rec := sys2.RecoveryStats()
	if rec.Instances != len(ids) {
		t.Fatalf("recovered %d instances, want %d", rec.Instances, len(ids))
	}
	// Everything was folded: replay streamed exactly one snapshot
	// record per instance, zero tail records.
	if rec.Records != int64(len(ids)) {
		t.Fatalf("replayed %d records after fold, want %d (one snapshot per instance)", rec.Records, len(ids))
	}
	inst := sys2.StoreStats().Instances
	if inst == nil || inst.Replay.SnapshotEntries != len(ids) || inst.Replay.TailEntries != 0 {
		t.Fatalf("instance replay stats %+v, want %d snapshot + 0 tail", inst.Replay, len(ids))
	}
	if got := snapshotJSON(t, sys2); !reflect.DeepEqual(want, got) {
		t.Fatalf("state diverged across fold+restart:\nbefore %v\nafter  %v", want, got)
	}
	storeReplayed := sys2.StoreStats().Engine.Replay
	firstStore := storeReplayed.SnapshotEntries + storeReplayed.TailEntries

	// 10x more history, another fold: the restart cost must not grow
	// with it (the population is unchanged, so neither is the
	// snapshot).
	for round := 0; round < 10; round++ {
		for _, id := range ids {
			if err := sys2.Annotate(id, "owner", fmt.Sprintf("churn %d", round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sys2.Compact(); err != nil {
		t.Fatal(err)
	}
	want2 := snapshotJSON(t, sys2)
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}

	sys3 := newSystem(t, restartOpts(dir, clock))
	defer sys3.Close()
	rec3 := sys3.RecoveryStats()
	if rec3.Records != int64(len(ids)) {
		t.Fatalf("replayed records grew with history: %d after churn, want %d", rec3.Records, len(ids))
	}
	sr := sys3.StoreStats().Engine.Replay
	if got := sr.SnapshotEntries + sr.TailEntries; got > firstStore+len(ids)*10 {
		// The execution log legitimately grows (logs are history); the
		// point is that replay is bounded by live state, not by every
		// put/append ever journaled.
		t.Fatalf("store replay grew unboundedly: %d entries vs %d at first fold", got, firstStore)
	}
	if got := snapshotJSON(t, sys3); !reflect.DeepEqual(want2, got) {
		t.Fatalf("state diverged after second fold+restart")
	}
	// And the recovered system keeps serving.
	if _, err := sys3.Advance(ids[1], "internalreview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestRotationBoundaryKillRecovery forces many segment rotations and
// background folds during a live workload, then "kills" the process —
// no Close — and tears the active segment's tail for good measure. The
// restarted system must recover every acknowledged mutation across the
// segment boundaries and keep serving.
func TestRotationBoundaryKillRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	opts := restartOpts(dir, clock)
	opts.SegmentMaxBytes = 4 << 10 // rotate every few records
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// No sys.Close, ever: every acknowledged mutation must already be
	// on disk, wherever rotation and folding have shuffled it.
	ids := seedWorkload(t, sys)
	for round := 0; round < 30; round++ {
		for _, id := range ids {
			if err := sys.Annotate(id, "owner", fmt.Sprintf("churn %d %s", round, strings.Repeat("x", 64))); err != nil {
				t.Fatal(err)
			}
		}
	}
	sys.Runtime.WaitDispatch()
	if st := sys.StoreStats().Instances; st.Rotations == 0 {
		t.Fatalf("workload never rotated the instance journal: %+v", st)
	}
	want := snapshotJSON(t, sys)

	// Torn tail on the active segment: a batch cut short mid-write.
	jf := filepath.Join(dir, "instances", "gelee.journal")
	f, err := os.OpenFile(jf, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":424242,"repo":"instances","op":"append","id":"li-0`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sys2 := newSystem(t, restartOpts(dir, clock))
	defer sys2.Close()
	if got := snapshotJSON(t, sys2); !reflect.DeepEqual(want, got) {
		t.Fatalf("rotation-boundary kill recovery diverged")
	}
	if _, err := sys2.Advance(ids[0], "eureview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactDuringLiveAdvances interleaves Compact with concurrent
// token moves at the system level: no stall, no lost acknowledged
// mutation, and the post-dust state replays identically.
func TestCompactDuringLiveAdvances(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys := newSystem(t, restartOpts(dir, clock))
	ids := seedWorkload(t, sys)

	done := make(chan error, len(ids)+1)
	for _, id := range ids {
		go func(id string) {
			for i := 0; i < 25; i++ {
				if err := sys.Annotate(id, "owner", "concurrent with compact"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(id)
	}
	go func() {
		for i := 0; i < 5; i++ {
			if err := sys.Compact(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < len(ids)+1; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotJSON(t, sys)
	wantLog := sys.ExecutionLog().Len()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2 := newSystem(t, restartOpts(dir, clock))
	defer sys2.Close()
	if got := snapshotJSON(t, sys2); !reflect.DeepEqual(want, got) {
		t.Fatalf("compact-under-load state diverged after restart")
	}
	if got := sys2.ExecutionLog().Len(); got != wantLog {
		t.Fatalf("execution log %d entries after restart, want %d (fold dropped or doubled history)", got, wantLog)
	}
	var sums []Summary
	data, _ := json.Marshal(sys2.Summaries())
	if err := json.Unmarshal(data, &sums); err != nil || len(sums) != len(ids) {
		t.Fatalf("summaries after restart: %d, want %d", len(sums), len(ids))
	}
}
