// Hosted service: Fig. 2 as a running process. Starts the full Gelee
// stack on a local port, then plays three roles over plain HTTP — the
// designer POSTing a Table I XML document, the artifact owner advancing
// over REST and SOAP, and a stakeholder embedding the Fig. 4 widget.
//
// Run: go run ./examples/hostedservice
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/xmlcodec"
)

func main() {
	sys, err := gelee.New(gelee.Options{EmbeddedPlugins: true, SyncActions: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.HTTPHandler())
	defer srv.Close()
	fmt.Printf("gelee hosted at %s\n\n", srv.URL)

	// The designer ships the quality plan as Table I XML.
	xmlDoc, err := xmlcodec.MarshalModel(scenario.QualityPlan())
	if err != nil {
		log.Fatal(err)
	}
	mustPost(srv.URL+"/api/v1/models", "application/xml", xmlDoc)
	fmt.Println("designer: quality plan defined from Table I XML")

	// The owner's document lives in the simulated Google Docs.
	sys.Sims.GDocs.Create("D4.2", "Platform Architecture", "inria-lead", "draft")

	// The owner instantiates and advances over REST.
	body, _ := json.Marshal(map[string]any{
		"model_uri": scenario.QualityPlanURI,
		"resource":  map[string]string{"uri": "http://docs.liquidpub.org/docs/D4.2", "type": "gdoc"},
		"owner":     "inria-lead",
		"bindings": map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "unitn-reviewer"},
		},
	})
	var inst struct {
		ID string `json:"id"`
	}
	json.Unmarshal(mustPost(srv.URL+"/api/v1/instances", "application/json", body), &inst)
	fmt.Printf("owner: instance %s created over REST\n", inst.ID)

	adv, _ := json.Marshal(map[string]any{"to": "elaboration"})
	mustPost(srv.URL+"/api/v1/instances/"+inst.ID+"/advance", "application/json", adv)

	// ... and one step over SOAP, as the paper's widgets would.
	envelope := fmt.Sprintf(`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body>
	  <advance xmlns="urn:gelee:lifecycle">
	    <instanceId>%s</instanceId><to>internalreview</to><actor>inria-lead</actor>
	  </advance></Body></Envelope>`, inst.ID)
	soapResp := mustPost(srv.URL+"/soap", "text/xml", []byte(envelope))
	fmt.Printf("owner: advanced to internalreview over SOAP (%d-byte response)\n", len(soapResp))

	// A stakeholder embeds the widget next to the resource (Fig. 4).
	widget := mustGet(srv.URL + "/widgets/" + inst.ID)
	fmt.Printf("\nwidget HTML (%d bytes), lifecycle strip excerpt:\n", len(widget))
	for _, line := range strings.Split(string(widget), "\n") {
		if strings.Contains(line, "current") || strings.Contains(line, "⚠") {
			fmt.Println("  " + strings.TrimSpace(line))
		}
	}

	// The project manager polls the cockpit.
	summary := mustGet(srv.URL + "/api/v1/monitor/summary")
	fmt.Printf("\ncockpit summary: %s\n", bytes.TrimSpace(summary))
}

func mustPost(url, contentType string, body []byte) []byte {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s: %s", url, resp.Status, data)
	}
	return data
}

func mustGet(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, data)
	}
	return data
}
