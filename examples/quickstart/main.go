// Quickstart: define a lifecycle, instantiate it on a wiki page, and
// drive it — the embedded (library) use of Gelee in ~60 lines.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/liquidpub/gelee"
)

func main() {
	// A System with the simulated plug-in suite (Google-Docs-like,
	// MediaWiki-like, SVN-like managing applications) wired in-process.
	sys, err := gelee.New(gelee.Options{EmbeddedPlugins: true, SyncActions: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 1. Design a lifecycle: a small review flow with one action.
	model := gelee.NewModel("urn:example:review-flow", "Two-step review").
		Phase("draft", "Drafting").Done().
		Phase("review", "Under Review").
		Action("http://www.liquidpub.org/a/notify", "Notify reviewers",
			gelee.Param{ID: "reviewers", Required: true}).
		Done().
		FinalPhase("done", "Done").
		Initial("draft").
		Chain("draft", "review", "done").
		MustBuild()
	if err := sys.DefineModel("", model); err != nil {
		log.Fatal(err)
	}

	// 2. The artifact lives in its own managing application — Gelee only
	// ever sees its URI and type.
	if _, err := sys.Sims.Wiki.CreatePage("HOWTO", "alice", "= How to use Gelee ="); err != nil {
		log.Fatal(err)
	}
	ref := gelee.Ref{URI: "http://wiki.example.org/pages/HOWTO", Type: "mediawiki"}

	// 3. Instantiate, binding the reviewer list at instantiation time.
	snap, err := sys.Instantiate(model.URI, ref, "alice", map[string]map[string]string{
		"http://www.liquidpub.org/a/notify": {"reviewers": "bob,carol"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s created on %s\n", snap.ID, ref.URI)

	// 4. The human is the engine: alice moves the token.
	for _, phase := range []string{"draft", "review", "done"} {
		snap, err = sys.Advance(snap.ID, phase, "alice", gelee.AdvanceOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> %-8s state=%s\n", phase, snap.State)
	}

	// 5. Entering "review" executed the notify action against the wiki:
	// reviewers joined the watchlist and got mail.
	page, _ := sys.Sims.Wiki.Page("HOWTO")
	fmt.Printf("watchers on the page: %v\n", page.Watchers)
	fmt.Printf("bob's inbox: %d message(s)\n", len(sys.Sims.Notify.Inbox("bob")))

	// 6. Full history, straight from the instance.
	fmt.Println("history:")
	for _, ev := range snap.Events {
		fmt.Printf("  %2d %-16s %s\n", ev.Seq, ev.Kind, ev.Detail)
	}
}
