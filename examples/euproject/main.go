// EU project: the paper's full §II.A motivating scenario — the
// LiquidPub project with 35 deliverables following the Fig. 1 quality
// plan, including the messy reality the paper insists on supporting:
// a deadline-pressed owner skipping the internal review (deviation with
// annotation), the coordinator changing the quality plan mid-project
// (light-coupled propagation, owners accept or reject), and the
// coordinator's monitoring cockpit.
//
// Run: go run ./examples/euproject
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

func main() {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	sys, err := gelee.New(gelee.Options{EmbeddedPlugins: true, SyncActions: true, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	model, deliverables := scenario.LiquidPub()
	if err := sys.DefineModel("lpAdmin", model); err != nil {
		log.Fatal(err)
	}

	// Create the 35 artifacts in their managing applications and
	// instantiate the quality plan on each.
	ids := make([]string, len(deliverables))
	for i, d := range deliverables {
		createResource(sys, d)
		snap, err := sys.Instantiate(model.URI, d.Ref, d.Owner, map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": d.Reviewers},
			"http://www.liquidpub.org/a/post":   {"site": "project.liquidpub.org"},
		})
		if err != nil {
			log.Fatalf("%s: %v", d.ID, err)
		}
		ids[i] = snap.ID
		// Spread progress: every deliverable somewhere different.
		for j := 0; j <= i%len(scenario.HappyPath); j++ {
			if _, err := sys.Advance(snap.ID, scenario.HappyPath[j], d.Owner, gelee.AdvanceOptions{}); err != nil {
				log.Fatalf("%s: %v", d.ID, err)
			}
		}
		clock.Advance(6 * time.Hour)
	}

	// --- The messy reality -------------------------------------------------

	// D1.1's owner skips the internal review: a deviation, annotated.
	d0 := deliverables[0]
	if _, err := sys.Advance(ids[0], "eureview", d0.Owner, gelee.AdvanceOptions{
		Annotation: "internal review skipped: EU deadline in 3 days",
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deviation recorded on %s (%s)\n", d0.ID, ids[0])

	// The coordinator adds an Archival phase to the quality plan and
	// propagates; each owner decides.
	v2 := model.Clone()
	v2.Version.Number = "2.0"
	v2.Phases = append(v2.Phases, &gelee.Phase{ID: "archival", Name: "Archival"})
	v2.Transitions = append(v2.Transitions, gelee.Transition{From: "accepted", To: "archival"})
	n, err := sys.Propagate("lpAdmin", v2, "quality plan v2: archival phase added")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality plan v2 proposed to %d running instances\n", n)

	// First ten owners accept, the eleventh rejects.
	accepted, rejected := 0, 0
	for i, id := range ids {
		snap, _ := sys.Instance(id)
		if snap.Pending == nil {
			continue
		}
		if accepted < 10 {
			if _, err := sys.AcceptChange(id, deliverables[i].Owner, ""); err != nil {
				log.Fatal(err)
			}
			accepted++
		} else if rejected == 0 {
			if err := sys.RejectChange(id, deliverables[i].Owner, "we finish under v1"); err != nil {
				log.Fatal(err)
			}
			rejected++
		}
	}
	fmt.Printf("owners accepted=%d rejected=%d (the rest are still deciding)\n\n", accepted, rejected)

	// Time passes; some deadlines slip.
	clock.Advance(45 * 24 * time.Hour)

	// --- The coordinator's cockpit (§II.B.4) --------------------------------
	sum := sys.Monitor().Summarize()
	fmt.Println("==== monitoring cockpit ====")
	fmt.Printf("deliverables: %d total, %d active, %d completed, %d not started\n",
		sum.Total, sum.Active, sum.Completed, sum.NotStarted)
	fmt.Printf("deviations: %d, failed actions: %d, pending proposals: %d\n",
		sum.Deviations, sum.Failed, sum.Proposals)

	phases := make([]string, 0, len(sum.ByPhase))
	for p := range sum.ByPhase {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	fmt.Println("by phase:")
	for _, p := range phases {
		fmt.Printf("  %-16s %d\n", p, sum.ByPhase[p])
	}

	late := sys.Monitor().Late()
	fmt.Printf("late deliverables: %d\n", len(late))
	for _, row := range late[:min(5, len(late))] {
		fmt.Printf("  %-10s %-16s due %s, late by %s (owner %s)\n",
			row.InstanceID, row.PhaseName, row.Due.Format("2006-01-02"), row.LateBy, row.Owner)
	}

	// Drill into the deviating deliverable's history.
	fmt.Printf("\n==== timeline of %s (%s) ====\n", d0.ID, ids[0])
	tl, _ := sys.Monitor().Timeline(ids[0])
	for _, e := range tl {
		marker := "  "
		if e.Deviation {
			marker = "⚠ "
		}
		fmt.Printf("%s%2d %-16s %-14s %s\n", marker, e.Seq, e.Kind, e.Phase, e.Detail)
	}
}

func createResource(sys *gelee.System, d scenario.Deliverable) {
	id := d.ID
	switch d.Ref.Type {
	case "mediawiki":
		sys.Sims.Wiki.CreatePage(id, d.Owner, "= "+d.Title+" =")
	case "gdoc":
		sys.Sims.GDocs.Create(id, d.Title, d.Owner, "Draft of "+d.Title)
	case "svn":
		sys.Sims.SVN.CreateRepo(id)
		sys.Sims.SVN.Commit(id, d.Owner, "import "+d.Title)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
