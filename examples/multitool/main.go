// Multitool: the universality demonstration of §IV.C — the SAME
// lifecycle definition manages a Google-Docs-like document, a MediaWiki
// page, and an SVN repository. Action types resolve to each managing
// application's own implementation ("the way this is done is Google
// Docs-specific").
//
// Run: go run ./examples/multitool
package main

import (
	"fmt"
	"log"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/scenario"
)

func main() {
	sys, err := gelee.New(gelee.Options{EmbeddedPlugins: true, SyncActions: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// One model — the Fig. 1 quality plan.
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		log.Fatal(err)
	}

	// Three artifacts in three different managing applications.
	sys.Sims.GDocs.Create("D1.1", "State of the Art", "alice", "draft text")
	sys.Sims.Wiki.CreatePage("D1.2", "alice", "= Requirements =")
	sys.Sims.SVN.CreateRepo("D1.3")
	sys.Sims.SVN.Commit("D1.3", "alice", "import latex sources")

	refs := []gelee.Ref{
		{URI: "http://docs.liquidpub.org/docs/D1.1", Type: "gdoc"},
		{URI: "http://wiki.liquidpub.org/pages/D1.2", Type: "mediawiki"},
		{URI: "svn://svn.liquidpub.org/D1.3", Type: "svn"},
	}
	for _, ref := range refs {
		snap, err := sys.Instantiate(model.URI, ref, "alice", map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "bob,carol"},
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.Advance(snap.ID, "elaboration", "alice", gelee.AdvanceOptions{})
		sys.Advance(snap.ID, "internalreview", "alice", gelee.AdvanceOptions{})

		got, _ := sys.Instance(snap.ID)
		fmt.Printf("\n%s (%s):\n", ref.URI, ref.Type)
		for _, ex := range got.Executions {
			fmt.Printf("  %-45s -> %-9s %s\n", ex.ActionName, ex.LastStatus, ex.LastDetail)
		}
	}

	// The same "Change access rights" action landed differently per
	// application: gdoc audience mode, wiki protection level, svn authz.
	doc, _ := sys.Sims.GDocs.Get("D1.1")
	page, _ := sys.Sims.Wiki.Page("D1.2")
	repo, _ := sys.Sims.SVN.Repo("D1.3")
	fmt.Println("\nnative effect of the shared 'reviewers-only' access action:")
	fmt.Printf("  gdoc      mode       = %s\n", doc.Mode)
	fmt.Printf("  mediawiki protection = %s\n", page.Protection)
	fmt.Printf("  svn       authz      = %s\n", repo.Authz)

	// Fig. 3's runtime filter: svn implements fewer action types.
	fmt.Println("\naction library visible at run time per resource type:")
	for _, rt := range []string{"gdoc", "mediawiki", "svn"} {
		fmt.Printf("  %-9s %d action types\n", rt, len(sys.ActionTypes(rt)))
	}
}
