// System-level journal integrity: a corrupt data directory opened in
// quarantine mode comes up read-only and stays latched there — probe
// successes must not walk the node back to healthy while quarantined
// history is missing — and the admin health document carries the
// integrity section.
package gelee

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/resilience"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

// corruptFirstRecord flips one byte early in the file — mid-file
// damage, since later records stay valid.
func corruptFirstRecord(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 30 {
		t.Fatalf("journal too small to corrupt: %d bytes", len(data))
	}
	data[20] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineLatchesReadOnly seeds a journaled deployment, corrupts
// the store journal mid-file, and reopens with quarantine on: the
// system serves, but latched read-only — mutations reject, the health
// report says why, and a fast probe loop cannot step the state down.
func TestQuarantineLatchesReadOnly(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2026, 1, 10, 9, 0, 0, 0, time.UTC))
	sys, err := New(restartOpts(dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	seedWorkload(t, sys)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	corruptFirstRecord(t, filepath.Join(dir, "gelee.journal"))

	// Without quarantine the open refuses outright.
	opts := restartOpts(dir, clock)
	if _, err := New(opts); err == nil {
		t.Fatal("corrupt journal opened without quarantine")
	}

	opts.Integrity = IntegrityOptions{Quarantine: true}
	opts.Resilience = ResilienceOptions{ProbeInterval: 5 * time.Millisecond, RecoverAfter: 1}
	sys2, err := New(opts)
	if err != nil {
		t.Fatalf("quarantine open failed: %v", err)
	}
	defer sys2.Close()

	if got := sys2.Health(); got != resilience.ReadOnly {
		t.Fatalf("health after quarantine = %v, want read-only", got)
	}
	if err := sys2.AdmitMutation(); !errors.Is(err, resilience.ErrReadOnly) {
		t.Fatalf("gate after quarantine = %v, want ErrReadOnly", err)
	}
	rep := sys2.HealthReport()
	if !rep.Health.Latched {
		t.Fatal("read-only state not latched")
	}
	if rep.Integrity == nil || rep.Integrity.QuarantinedFiles == 0 || !rep.Integrity.ReadOnlyLatched {
		t.Fatalf("health integrity section = %+v, want quarantine counted and latched", rep.Integrity)
	}

	// The durability probes succeed (the reopened journal writes fine),
	// but the latch must hold: quarantined history does not grow back.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := sys2.Health(); got != resilience.ReadOnly {
		t.Fatalf("probe successes unlatched read-only: %v (probes %+v)", got, sys2.HealthReport().Probes)
	}

	// The model definitions that survived (instance journal was intact)
	// still serve reads, and the admin endpoint carries the section.
	srv := httptest.NewServer(sys2.HTTPHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/v1/admin/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		State     string `json:"state"`
		Integrity *struct {
			QuarantinedFiles uint64 `json:"quarantined_files"`
			ReadOnlyLatched  bool   `json:"read_only_latched"`
		} `json:"integrity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.State != "read-only" || doc.Integrity == nil ||
		doc.Integrity.QuarantinedFiles == 0 || !doc.Integrity.ReadOnlyLatched {
		t.Fatalf("admin health = %+v", doc)
	}
}

// TestHealthReportIntegritySection checks the happy path: a healthy
// journaled deployment reports framing on, zero corruption, no latch.
func TestHealthReportIntegritySection(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2026, 1, 10, 9, 0, 0, 0, time.UTC))
	sys, err := New(restartOpts(dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DefineModel("", scenario.QualityPlan()); err != nil {
		t.Fatal(err)
	}
	rep := sys.HealthReport()
	if rep.Integrity == nil || !rep.Integrity.Framing {
		t.Fatalf("integrity section = %+v, want framing on", rep.Integrity)
	}
	if rep.Integrity.CorruptFiles != 0 || rep.Integrity.ReadOnlyLatched {
		t.Fatalf("healthy node reports corruption: %+v", rep.Integrity)
	}
}
