// Package gelee is the public facade of the Gelee universal resource
// lifecycle management system — a from-scratch Go reproduction of Báez,
// Casati and Marchese, "Universal Resource Lifecycle Management"
// (WISS/ICDE 2009).
//
// A System wires the full Fig. 2 architecture: the data tier (model,
// template, action-definition and user repositories plus the execution
// log, journal-backed), the lifecycle manager (design-time and run-time
// modules), the resource manager with its plug-ins, and the UI tier
// (monitoring cockpit queries and execution widgets). Everything is
// usable embedded (in-process, see examples/quickstart) or hosted over
// HTTP (cmd/geleed).
//
// The quickest start:
//
//	sys, _ := gelee.New(gelee.Options{EmbeddedPlugins: true})
//	defer sys.Close()
//	sys.DefineModel("", myModel)
//	snap, _ := sys.Instantiate(myModel.URI, ref, "me", nil)
//	sys.Advance(snap.ID, "elaboration", "me", gelee.AdvanceOptions{})
package gelee

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	stdruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/liquidpub/gelee/internal/access"
	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/invoke"
	"github.com/liquidpub/gelee/internal/monitor"
	"github.com/liquidpub/gelee/internal/plugin/composite"
	"github.com/liquidpub/gelee/internal/plugin/gdocsim"
	"github.com/liquidpub/gelee/internal/plugin/notifysim"
	"github.com/liquidpub/gelee/internal/plugin/svnsim"
	"github.com/liquidpub/gelee/internal/plugin/websim"
	"github.com/liquidpub/gelee/internal/plugin/wikisim"
	"github.com/liquidpub/gelee/internal/resilience"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/store"
	"github.com/liquidpub/gelee/internal/vclock"
	"github.com/liquidpub/gelee/internal/widget"
)

// Re-exported types so that library users interact with one import path.
type (
	// Model is a lifecycle definition (phases + suggested transitions).
	Model = core.Model
	// Phase is one stage of a lifecycle.
	Phase = core.Phase
	// Transition is a suggested evolution between phases.
	Transition = core.Transition
	// Param is an action parameter (binding time, required flag).
	Param = core.Param
	// Ref identifies a managed resource: URI + type (+ credentials).
	Ref = resource.Ref
	// Snapshot is the observable state of a lifecycle instance.
	Snapshot = runtime.Snapshot
	// Summary is the copy-free list-view projection of an instance:
	// token position, maintained counters, due-date inputs.
	Summary = runtime.Summary
	// MoveResult is the copy-free result of a mutating verb: the
	// post-move summary plus only the events the call appended.
	MoveResult = runtime.MoveResult
	// EventPage is a paged window of an instance's event history.
	EventPage = runtime.EventPage
	// SummaryPage is one cursor window of the population summary view.
	SummaryPage = runtime.SummaryPage
	// Filter is the pushed-down predicate of a population query
	// (resource/model URI → secondary indexes, state/lateness →
	// summary counters); the zero value matches every instance.
	Filter = runtime.Filter
	// AdvanceOptions carries annotation and call-time bindings of a move.
	AdvanceOptions = runtime.AdvanceOptions
	// ActionType is a reusable action signature (Table II).
	ActionType = actionlib.ActionType
	// Implementation binds an action type to an endpoint for a type.
	Implementation = actionlib.Implementation
	// User is an account; Grant assigns a role on a scope.
	User = access.User
	// Grant assigns a role on a scope to a user.
	Grant = access.Grant
	// StatusUpdate is an action callback message.
	StatusUpdate = actionlib.StatusUpdate
	// IntegrityOptions tune journal corruption detection: checksummed
	// record framing, quarantine-and-serve opens, and the background
	// scrubber (see store.IntegrityOptions).
	IntegrityOptions = store.IntegrityOptions
	// CorruptFile describes one corruption detection, delivered to
	// IntegrityOptions.OnCorrupt.
	CorruptFile = store.CorruptFile
)

// Role constants re-exported from the access package (§IV.D).
const (
	RoleLifecycleManager = access.RoleLifecycleManager
	RoleInstanceOwner    = access.RoleInstanceOwner
	RoleTokenOwner       = access.RoleTokenOwner
	RoleResourceOwner    = access.RoleResourceOwner
)

// NewModel starts a fluent model builder (see internal/core.Builder).
var NewModel = core.NewModel

// Begin is the pseudo-phase initial transitions start from.
const Begin = core.Begin

// Options configure a System.
type Options struct {
	// DataDir roots the persistent data tier. Empty means in-memory.
	DataDir string
	// Engine selects the storage engine: "" (auto — journal when
	// DataDir is set, memory otherwise), "journal", or "memory".
	Engine string
	// SyncJournal makes the journal engine fsync every group-commit
	// batch: durable writes at a fraction of the per-append cost.
	SyncJournal bool
	// SyncEveryAppend fsyncs each journal append individually — the
	// legacy durability mode, kept as a benchmark baseline.
	SyncEveryAppend bool
	// StoreShards overrides the repository lock-stripe count
	// (0 = store.DefaultShards).
	StoreShards int
	// JournalFlushInterval is how long the group-commit writer waits
	// to grow a batch (0 = opportunistic).
	JournalFlushInterval time.Duration
	// JournalFlushBatch caps journal entries per group-commit batch
	// (0 = store default).
	JournalFlushBatch int
	// SegmentMaxBytes seals a journal's active segment once it grows
	// past this size and rotates to a fresh one — an O(1) rename under
	// the appender lock, so writers never wait on compaction. Sealed
	// segments are folded into snapshots by a background folder, which
	// is what keeps restart replay O(snapshot + tail) instead of
	// O(all history). Applies to both the definitions journal and the
	// instance journal; 0 disables automatic rotation (Compact still
	// seals and folds on demand).
	SegmentMaxBytes int64
	// SnapshotEvery folds once this many sealed segments accumulate
	// (0 = fold on every rotation).
	SnapshotEvery int
	// LogLiveWindow is how many of the execution log's newest entries
	// stay in RAM and in each snapshot; older history is spilled by
	// folds into immutable CRC-summed archive files carried forward by
	// reference, keeping fold cost and snapshot size flat as history
	// grows. Cold history still serves reads, streamed from disk.
	// 0 = store.DefaultLogLiveWindow; negative = archive nothing (every
	// fold rewrites the full log — the legacy behavior).
	LogLiveWindow int
	// ReadCacheEntries bounds the per-shard LRU read cache in front of
	// the model and template repositories: decoded values prepared for
	// sharing (a deep clone) are kept hot so the dominant read paths —
	// cockpit model fetches, monitor rendering, instantiation storms on
	// a popular template — skip the defensive copy entirely. Write-
	// through invalidated on Put/Delete/replay and purged on quarantine
	// or repair, so a cached value never outlives its record.
	// 0 = store.DefaultReadCacheEntries per shard; negative disables.
	ReadCacheEntries int
	// FoldMinInterval spaces background snapshot folds at least this
	// far apart in wall-clock time (0 = fold on every qualifying seal).
	// Compact ignores it.
	FoldMinInterval time.Duration
	// FoldMinGarbage is the minimum garbage ratio (sealed backlog bytes
	// over sealed + snapshot bytes) a background fold requires
	// (0 = no floor). Compact ignores it.
	FoldMinGarbage float64
	// RuntimeShards overrides the runtime instance-table lock-stripe
	// count (0 = runtime.DefaultShards). Advances on instances in
	// different stripes share no lock.
	RuntimeShards int
	// MaxEventsInMemory caps each instance's in-memory event history
	// (0 = unbounded). Old events are ring-truncated once the cap is
	// exceeded; the journaled execution log keeps the full record, and
	// cockpit aggregates are unaffected (they come from incremental
	// counters).
	MaxEventsInMemory int
	// InvocationRetention ages invocation→instance callback-routing
	// entries out of the index once their execution is terminal plus
	// this grace window (0 = keep forever).
	InvocationRetention time.Duration
	// PersistInstances makes lifecycle instances durable: every
	// instance mutation is written through to a dedicated instance
	// journal (under DataDir/instances with the journal engine, a
	// no-op sink with the memory engine) before it is acknowledged,
	// and on open the journal is replayed — token positions, event
	// histories, executions, pending changes, secondary indexes and
	// incremental counters all come back. Without it instances live
	// only in RAM, the paper's original data-tier split.
	PersistInstances bool
	// Clock overrides the wall clock (tests, benchmarks).
	Clock vclock.Clock
	// Auth enables role enforcement: every mutation requires an actor
	// with the §IV.D role. Disabled, any actor may do anything (embedded
	// library use).
	Auth bool
	// EmbeddedPlugins wires the full simulated-plug-in suite (Google
	// Docs, MediaWiki, SVN, project site, notifications) in-process with
	// local action endpoints.
	EmbeddedPlugins bool
	// SyncActions dispatches phase actions inline (deterministic tests).
	SyncActions bool
	// Resilience tunes overload and failure behavior: admission
	// control, the degraded/read-only health state machine, outcall
	// circuit breakers and threshold alerting. The zero value enables
	// health tracking and breakers with defaults; shedding, probing
	// and alerting stay off until configured.
	Resilience ResilienceOptions
	// Integrity tunes end-to-end journal integrity on both journals
	// (the definitions store and the instance collection): checksummed
	// record framing is on by default; Quarantine makes a corrupt open
	// serve the surviving history read-only instead of failing;
	// ScrubInterval starts the background re-verification of sealed
	// segments, snapshots and archives. A quarantined file latches the
	// health state machine read-only until restart-after-repair
	// (geleectl fsck); the OnCorrupt hook still fires for callers that
	// want their own telemetry.
	Integrity IntegrityOptions
}

// DefaultInvokeMaxInFlight caps concurrent action dispatches per
// endpoint when ResilienceOptions.InvokeMaxInFlight is zero.
const DefaultInvokeMaxInFlight = 64

// DefaultReadCacheEntries re-exports the per-shard read-cache bound
// used when Options.ReadCacheEntries is zero.
const DefaultReadCacheEntries = store.DefaultReadCacheEntries

// ResilienceOptions tunes the resilience layer. See internal/resilience
// for the health-state-machine and breaker semantics.
type ResilienceOptions struct {
	// MaxQueueDepth is the admission watermark: when the data tier's
	// commit backlog (group-commit queue depth, instance-appender
	// in-flight count, or DepthSignal — whichever is highest) reaches
	// it, mutating HTTP requests shed with 429 + Retry-After until the
	// backlog falls back to half the watermark. Reads continue.
	// 0 disables shedding.
	MaxQueueDepth int
	// ShedRetryAfter is the Retry-After hint shed responses carry
	// (default 1s).
	ShedRetryAfter time.Duration
	// DegradeAfter consecutive journal-append failures mark the system
	// degraded (default 1); ReadOnlyAfter trip read-only mode, where
	// mutations are rejected with 503 (default 3); RecoverAfter
	// consecutive successes step back down one level (default 3).
	DegradeAfter  int
	ReadOnlyAfter int
	RecoverAfter  int
	// ProbeInterval, when positive, runs a durability prober: while
	// the system is degraded or read-only it writes a no-op probe
	// record through the instance-journal path on this interval, so
	// read-only mode — which admits no organic writes — can prove the
	// disk again and recover. 0 disables probing.
	ProbeInterval time.Duration
	// InvokeTimeout bounds one action-dispatch HTTP attempt
	// (0 = invoke.DefaultTimeout, 30s).
	InvokeTimeout time.Duration
	// InvokeAttempts is the total attempts per remote dispatch, with
	// jittered exponential backoff between them (0 or 1 = no retry).
	// Safe because invocations carry a unique id end to end.
	InvokeAttempts int
	// InvokeMaxInFlight caps concurrent dispatches per endpoint
	// (0 = DefaultInvokeMaxInFlight; negative = unlimited).
	InvokeMaxInFlight int
	// MaxConnsPerHost bounds the outcall HTTP connection pool: total
	// connections (idle + active + dialing) per endpoint host across
	// the REST and SOAP transports. 0 keeps the shared default (128);
	// negative = unlimited.
	MaxConnsPerHost int
	// MaxIdleConns caps idle pooled connections across all endpoint
	// hosts (0 = shared default 256; negative disables keep-alive
	// pooling).
	MaxIdleConns int
	// BreakerFailures consecutive dispatch failures open an endpoint's
	// circuit — further sends fail fast until BreakerCooldown (default
	// 15s) elapses and a half-open trial succeeds. 0 means the default
	// of 5; negative disables breakers entirely.
	BreakerFailures int
	BreakerCooldown time.Duration
	// AlertWebhook, when set, receives every threshold alert as a JSON
	// POST. AlertInterval is the evaluation cadence; the watcher loop
	// runs only when AlertInterval is positive or AlertWebhook is set
	// (cadence then defaults to 5s).
	AlertWebhook  string
	AlertInterval time.Duration
	// DepthSignal, when set, is an extra saturation signal combined
	// (max) with the engine queue depth — a seam for external backlog
	// measures and deterministic shedding tests.
	DepthSignal func() int
	// WrapJournal, when set, wraps the runtime's instance-journal sink
	// before health observation is attached — the fault-injection seam
	// the failure-transition tests use.
	WrapJournal func(runtime.Journal) runtime.Journal
}

// Sims exposes the embedded simulated managing applications so that
// examples and tests can create documents, inspect inboxes, etc.
// Composites implements the paper's §VI future-work extension: complex
// resources whose components carry their own lifecycles; use
// CompositeRollup to aggregate component progress.
type Sims struct {
	GDocs      *gdocsim.Service
	Wiki       *wikisim.Service
	SVN        *svnsim.Service
	Web        *websim.Service
	Notify     *notifysim.Service
	Composites *composite.Service
}

// System is a complete Gelee deployment.
type System struct {
	opts      Options
	clock     vclock.Clock
	store     *store.Store
	models    *store.Repo[*core.Model]
	templates *store.Repo[*core.Model]
	actTypes  *store.Repo[actionlib.ActionType]
	actImpls  *store.Repo[actionlib.Implementation]
	users     *store.Repo[access.User]
	grants    *store.Repo[access.Grant]
	execLog   *store.Log
	instances *store.Instances // nil unless Options.PersistInstances

	// readCacheEntries is the resolved per-shard read-cache bound
	// (<= 0 when disabled) — reported by startup logs and admin stats.
	readCacheEntries int

	Registry  *actionlib.Registry
	Resources *resource.Manager
	ACL       *access.Control
	Runtime   *runtime.Runtime
	Local     *invoke.LocalInvoker
	Sims      *Sims

	composites *composite.Adapter
	mon        *monitor.Monitor
	wdgt       *widget.Renderer

	// Resilience layer: the health state machine fed by journal-append
	// outcomes, the admission gate in front of mutations, the shared
	// outcall breakers, the threshold watcher, and the (optional)
	// durability prober that writes no-op records through journal —
	// the final, possibly fault-wrapped, observed sink.
	health        *resilience.Health
	gate          *resilience.Gate
	breakers      *resilience.BreakerSet
	watcher       *resilience.Watcher
	journal       runtime.Journal
	probeStop     chan struct{}
	probeDone     chan struct{}
	probeAttempts atomic.Int64
	probeFailures atomic.Int64
	closeOnce     sync.Once
}

// CompositeRollup aggregates the component lifecycles of an embedded
// composite resource (§VI extension): how many components exist, how
// many carry lifecycles, their phases, and whether all completed.
func (s *System) CompositeRollup(compositeID string) (composite.Rollup, error) {
	if s.composites == nil {
		return composite.Rollup{}, errors.New("gelee: composites require EmbeddedPlugins")
	}
	return s.composites.Rollup(compositeID)
}

// New builds and loads a System.
func New(opts Options) (*System, error) {
	clock := opts.Clock
	if clock == nil {
		clock = vclock.System
	}

	// The health state machine watches every durable append — both
	// stores report their outcomes into it, so persistent disk trouble
	// flips the system degraded and then read-only.
	res := opts.Resilience
	health := resilience.NewHealth(resilience.HealthConfig{
		DegradeAfter:  res.DegradeAfter,
		ReadOnlyAfter: res.ReadOnlyAfter,
		RecoverAfter:  res.RecoverAfter,
	})

	// Journal integrity: the facade owns the OnCorrupt hook so that a
	// quarantined file — damaged history moved aside at open — latches
	// the node read-only until an operator repairs and restarts
	// (probe-driven recovery must not un-latch it; the disk working
	// again does not restore the quarantined records). Scrub detections
	// don't latch: the file may never be read, and the journal-corruption
	// alert plus the health report carry the signal to the operator.
	integ := opts.Integrity
	userOnCorrupt := integ.OnCorrupt
	// purgeCaches is bound to the cached repositories once they exist
	// (below); a quarantine event must also drop every cached decode,
	// since the records they came from just left the journal. The hook
	// can fire during the store's initial Load (caches still empty, the
	// purge is a no-op but must not deadlock — see the bind site).
	var purgeCaches func()
	integ.OnCorrupt = func(cf store.CorruptFile) {
		if cf.Quarantined {
			health.ForceReadOnly(fmt.Sprintf("journal corruption quarantined: %s", cf.Path))
			if purgeCaches != nil {
				purgeCaches()
			}
		}
		if userOnCorrupt != nil {
			userOnCorrupt(cf)
		}
	}

	storeOpts := store.Options{
		Sync:             opts.SyncJournal,
		SyncEveryAppend:  opts.SyncEveryAppend,
		Shards:           opts.StoreShards,
		FlushInterval:    opts.JournalFlushInterval,
		FlushBatch:       opts.JournalFlushBatch,
		SegmentMaxBytes:  opts.SegmentMaxBytes,
		SnapshotEvery:    opts.SnapshotEvery,
		LogLiveWindow:    opts.LogLiveWindow,
		FoldMinInterval:  opts.FoldMinInterval,
		FoldMinGarbage:   opts.FoldMinGarbage,
		ReadCacheEntries: opts.ReadCacheEntries,
		Clock:            clock,
		OnAppendResult:   health.Observe,
		Integrity:        integ,
	}
	engine := opts.Engine
	if engine == "" {
		engine = "memory"
		if opts.DataDir != "" {
			engine = "journal"
		}
	}
	var st *store.Store
	switch engine {
	case "memory":
		st = store.New(store.NewMemoryEngine(), storeOpts)
	case "journal":
		if opts.DataDir == "" {
			return nil, errors.New("gelee: journal engine requires DataDir")
		}
		var err error
		st, err = store.Open(opts.DataDir, storeOpts)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("gelee: unknown storage engine %q", engine)
	}

	s := &System{
		opts:      opts,
		clock:     clock,
		health:    health,
		store:     st,
		Registry:  actionlib.NewRegistry(),
		Resources: resource.NewManager(),
		ACL:       access.NewControl(),
	}
	s.models = store.MustRepo[*core.Model](st, "models")
	s.templates = store.MustRepo[*core.Model](st, "templates")
	// Read cache: models and templates are the read-dominated
	// repositories (every cockpit fetch, monitor render and
	// instantiation reads them), and their values need a defensive deep
	// clone when handed out — exactly what an LRU of prepared shared
	// values amortizes. ModelView/TemplateView serve the shared path.
	cacheEntries := opts.ReadCacheEntries
	if cacheEntries == 0 {
		cacheEntries = store.DefaultReadCacheEntries
	}
	s.readCacheEntries = cacheEntries
	s.models.EnableReadCache(cacheEntries, (*core.Model).Clone)
	s.templates.EnableReadCache(cacheEntries, (*core.Model).Clone)
	// Purge the cached repos directly, not via Store.PurgeReadCaches:
	// a quarantine can fire OnCorrupt in the middle of the store's
	// Load, where the store mutex is already held — the repo-level
	// purge takes only per-shard cache locks and is safe there.
	purgeCaches = func() {
		s.models.PurgeReadCache()
		s.templates.PurgeReadCache()
	}
	s.actTypes = store.MustRepo[actionlib.ActionType](st, "action-types")
	s.actImpls = store.MustRepo[actionlib.Implementation](st, "action-impls")
	s.users = store.MustRepo[access.User](st, "users")
	s.grants = store.MustRepo[access.Grant](st, "grants")
	s.execLog = store.MustLog(st, "execlog")
	if opts.PersistInstances {
		// The instance collection runs on its own engine (its own
		// journal file under DataDir/instances) so instance writes
		// never order an instance lock against the definitions store's
		// commit lock; see store.Instances.
		if engine == "journal" {
			coll, err := store.OpenInstances(filepath.Join(opts.DataDir, "instances"),
				store.InstancesOptions{
					Sync:            opts.SyncJournal || opts.SyncEveryAppend,
					SegmentMaxBytes: opts.SegmentMaxBytes,
					SnapshotEvery:   opts.SnapshotEvery,
					Integrity:       integ,
				})
			if err != nil {
				return nil, err
			}
			s.instances = coll
		} else {
			s.instances = store.NewInstances(store.NewMemoryEngine())
		}
	}
	if err := st.Load(); err != nil {
		return nil, err
	}

	// Rebuild the in-memory services from the replayed repositories.
	for _, at := range s.actTypes.List() {
		if err := s.Registry.ReplaceType(at); err != nil {
			return nil, err
		}
	}
	for _, im := range s.actImpls.List() {
		if err := s.Registry.RegisterImplementation(im); err != nil && !errors.Is(err, actionlib.ErrDuplicate) {
			return nil, err
		}
	}
	for _, u := range s.users.List() {
		if err := s.ACL.AddUser(u); err != nil {
			return nil, err
		}
	}
	for _, g := range s.grants.List() {
		if err := s.ACL.Grant(g); err != nil {
			return nil, err
		}
	}

	// Invocation transports: local (in-process plug-ins) plus REST and
	// SOAP for remote ones. The local invoker reports straight into the
	// runtime; the closure breaks the construction cycle between them.
	s.Local = invoke.NewLocalInvoker(reporterFunc(func(up actionlib.StatusUpdate) error {
		return s.Runtime.Report(up)
	}))
	// Remote dispatch goes through per-endpoint circuit breakers (on by
	// default; BreakerFailures < 0 disables) with an in-flight cap, and
	// optionally retries idempotent sends with jittered backoff.
	if res.BreakerFailures >= 0 {
		maxInFlight := res.InvokeMaxInFlight
		if maxInFlight == 0 {
			maxInFlight = DefaultInvokeMaxInFlight
		} else if maxInFlight < 0 {
			maxInFlight = 0
		}
		s.breakers = resilience.NewBreakerSet(resilience.BreakerConfig{
			Failures:    res.BreakerFailures,
			Cooldown:    res.BreakerCooldown,
			MaxInFlight: maxInFlight,
		})
	}
	// A non-zero pool override gets its own bounded transport; zero
	// keeps the shared pooled client (invoke.NewPooledClient returns
	// nil, and the invokers fall back to it).
	outcalls := invoke.NewPooledClient(invoke.PoolConfig{
		MaxConnsPerHost: res.MaxConnsPerHost,
		MaxIdleConns:    res.MaxIdleConns,
	})
	dispatcher := &invoke.Dispatcher{
		REST:     &invoke.RESTInvoker{Client: outcalls, Timeout: res.InvokeTimeout},
		SOAP:     &invoke.SOAPInvoker{Client: outcalls, Timeout: res.InvokeTimeout},
		Local:    s.Local,
		Breakers: s.breakers,
		Attempts: res.InvokeAttempts,
	}
	var policy runtime.Policy
	if opts.Auth {
		policy = aclPolicy{s.ACL}
	}
	var sink runtime.Journal
	if s.instances != nil {
		sink = instanceSink{s.instances}
	}
	if res.WrapJournal != nil {
		sink = res.WrapJournal(sink)
	}
	if sink != nil {
		// Observe outcomes at the top of the sink chain so an injected
		// fault wrapper's failures drive the health machine exactly like
		// real disk failures would.
		sink = observedJournal{inner: sink, health: health}
	}
	s.journal = sink
	rt, err := runtime.New(runtime.Config{
		Registry:            s.Registry,
		Invoker:             dispatcher,
		Clock:               clock,
		Policy:              policy,
		SyncActions:         opts.SyncActions,
		Observer:            s.logEvent,
		Shards:              opts.RuntimeShards,
		MaxEventsInMemory:   opts.MaxEventsInMemory,
		InvocationRetention: opts.InvocationRetention,
		Journal:             sink,
	})
	if err != nil {
		return nil, err
	}
	s.Runtime = rt

	// Replay the instance journal into the fresh runtime — token
	// positions, histories, executions, pending changes, indexes and
	// counters all rebuild — then open it for write-through appends.
	// Replay streams the newest snapshot plus unfolded tail segments,
	// sharded by instance id across GOMAXPROCS appliers (records of
	// different instances are independent). It happens before anything
	// can mutate the runtime and applies records directly, so no event
	// is re-observed into the execution log and no action is
	// re-dispatched. Once recovered, the runtime becomes the journal's
	// snapshot source: folding asks it for per-instance RecSnapshot
	// images so sealed segments can be deleted.
	if s.instances != nil {
		if err := s.instances.ReplayParallel(stdruntime.GOMAXPROCS(0), rt.ApplyJournal); err != nil {
			return nil, fmt.Errorf("gelee: replay instance journal: %w", err)
		}
		rt.FinishRecovery()
		s.instances.SetSnapshotSource(rt.EmitSnapshots)
	}

	// Admission control: the mutation gate sheds when the commit
	// backlog — group-commit queue depth, instance-appender in-flight
	// count, or the external DepthSignal, whichever is highest —
	// crosses the watermark, and rejects outright in read-only mode.
	depth := func() int {
		d := st.QueueDepth()
		if s.instances != nil {
			if w := s.instances.Waiters(); w > d {
				d = w
			}
		}
		if res.DepthSignal != nil {
			if v := res.DepthSignal(); v > d {
				d = v
			}
		}
		return d
	}
	s.gate = &resilience.Gate{
		Health: health,
		Admission: resilience.NewAdmission(resilience.AdmissionConfig{
			Watermark:  res.MaxQueueDepth,
			RetryAfter: res.ShedRetryAfter,
		}, depth),
	}

	// Threshold alerting: edge-triggered rules over the saturation and
	// failure counters. The watcher object always exists (it backs the
	// admin alert feed); its evaluation loop runs only when alerting is
	// configured.
	var rules []resilience.Rule
	if res.MaxQueueDepth > 0 {
		rules = append(rules, resilience.Rule{
			Name:      "commit-queue-depth",
			Severity:  "warning",
			Threshold: float64(res.MaxQueueDepth) * 0.8,
			Value:     func() float64 { return float64(depth()) },
		})
	}
	rules = append(rules, resilience.Rule{
		Name:      "journal-health",
		Severity:  "critical",
		Threshold: float64(resilience.Degraded),
		Value:     func() float64 { return float64(health.State()) },
	})
	// Corruption detections (open pre-verify + background scrub) across
	// both journals. CorruptFiles already includes quarantines.
	rules = append(rules, resilience.Rule{
		Name:      "journal-corruption",
		Severity:  "critical",
		Threshold: 1,
		Value: func() float64 {
			st := s.StoreStats()
			v := st.Engine.Integrity.CorruptFiles
			if st.Instances != nil {
				v += st.Instances.Integrity.CorruptFiles
			}
			return float64(v)
		},
	})
	if s.breakers != nil {
		br := s.breakers
		rules = append(rules, resilience.Rule{
			Name:      "breakers-open",
			Severity:  "warning",
			Threshold: 1,
			Value:     func() float64 { return float64(br.OpenCount()) },
		})
	}
	adm := s.gate.Admission
	var lastShed int64 // read/written only by the watcher goroutine
	rules = append(rules, resilience.Rule{
		Name:      "shed-rate",
		Severity:  "warning",
		Threshold: 1,
		Value: func() float64 {
			cur := adm.Shed()
			d := cur - lastShed
			lastShed = cur
			return float64(d)
		},
	})
	s.watcher = resilience.NewWatcher(resilience.WatcherConfig{
		Interval: res.AlertInterval,
		Webhook:  res.AlertWebhook,
	}, rules)
	if res.AlertInterval > 0 || res.AlertWebhook != "" {
		s.watcher.Start()
	}

	// The durability prober is what lets read-only mode end: mutations
	// are gated off, so no organic append can ever prove the disk is
	// back. While unhealthy it writes a no-op probe record through the
	// full sink chain (replay discards probes).
	if res.ProbeInterval > 0 && s.journal != nil {
		s.probeStop = make(chan struct{})
		s.probeDone = make(chan struct{})
		go s.probeLoop(res.ProbeInterval)
	}

	if opts.EmbeddedPlugins {
		if err := s.wireEmbeddedPlugins(); err != nil {
			return nil, err
		}
	}

	// The monitor reads through the System, not the bare runtime, so
	// its timeline pages get the log-backed backfill of Events and its
	// phase stats the incremental counters.
	s.mon = monitor.New(s, clock)
	var aclForWidgets *access.Control
	if opts.Auth {
		aclForWidgets = s.ACL
	}
	s.wdgt = widget.New(rt, s.Resources, aclForWidgets, clock)
	return s, nil
}

// reporterFunc adapts a function to invoke.Reporter.
type reporterFunc func(actionlib.StatusUpdate) error

// Report calls f.
func (f reporterFunc) Report(up actionlib.StatusUpdate) error { return f(up) }

// wireEmbeddedPlugins builds the simulated managing applications,
// registers their adapters with the resource manager, their action
// implementations with the registry, and their handlers with the local
// invoker.
func (s *System) wireEmbeddedPlugins() error {
	notify := notifysim.NewService(s.clock)
	sims := &Sims{
		GDocs:      gdocsim.NewService(s.clock),
		Wiki:       wikisim.NewService(s.clock),
		SVN:        svnsim.NewService(s.clock),
		Web:        websim.NewService(s.clock),
		Notify:     notify,
		Composites: composite.NewService(),
	}
	s.Sims = sims

	gdocs := gdocsim.NewAdapter(sims.GDocs, s.Runtime, notify)
	wiki := wikisim.NewAdapter(sims.Wiki, s.Runtime, notify)
	svn := svnsim.NewAdapter(sims.SVN, s.Runtime)
	s.composites = composite.NewAdapter(sims.Composites, s.Resources, s.Runtime)
	if err := s.Resources.Register(s.composites); err != nil {
		return err
	}

	type wiring struct {
		plug resource.Plugin
		reg  func(base string) error
		bind func(base string)
		base string
	}
	wirings := []wiring{
		{gdocs, func(b string) error { return gdocs.RegisterActions(s.Registry, b, actionlib.ProtocolLocal) },
			func(b string) { gdocs.BindLocal(s.Local, b) }, "local://gdoc/actions"},
		{wiki, func(b string) error { return wiki.RegisterActions(s.Registry, b, actionlib.ProtocolLocal) },
			func(b string) { wiki.BindLocal(s.Local, b) }, "local://mediawiki/actions"},
		{svn, func(b string) error { return svn.RegisterActions(s.Registry, b, actionlib.ProtocolLocal) },
			func(b string) { svn.BindLocal(s.Local, b) }, "local://svn/actions"},
	}
	for _, w := range wirings {
		if err := s.Resources.Register(w.plug); err != nil {
			return err
		}
		if err := w.reg(w.base); err != nil && !errors.Is(err, actionlib.ErrDuplicate) {
			return err
		}
		w.bind(w.base)
	}
	return nil
}

// aclPolicy adapts access.Control to the runtime's Policy.
type aclPolicy struct{ c *access.Control }

func (p aclPolicy) CanDrive(actor, inst string) bool { return p.c.CanDrive(actor, inst) }
func (p aclPolicy) CanFollow(actor, inst, target string) bool {
	return p.c.CanFollow(actor, inst, target)
}

// instanceSink adapts the store's instance collection to the runtime's
// Journal seam: marshal the typed record, append it durably under the
// instance's key. Record is called under the mutated instance's lock,
// which is what gives the journal per-instance mutation order.
type instanceSink struct{ coll *store.Instances }

func (s instanceSink) Record(rec *runtime.JournalRecord) error {
	data, err := rec.Encode()
	if err != nil {
		return fmt.Errorf("gelee: encode instance record: %w", err)
	}
	return s.coll.Append(rec.Instance, data)
}

// observedJournal feeds every instance-append outcome into the health
// state machine. It sits above any injected fault wrapper, so injected
// failures drive the machine exactly like real disk failures.
type observedJournal struct {
	inner  runtime.Journal
	health *resilience.Health
}

func (o observedJournal) Record(rec *runtime.JournalRecord) error {
	err := o.inner.Record(rec)
	o.health.Observe(err)
	return err
}

// probeLoop writes a no-op probe record through the journal chain while
// the system is unhealthy. Probe outcomes reach the health machine via
// the observedJournal wrapper; on replay the runtime discards RecProbe.
func (s *System) probeLoop(every time.Duration) {
	defer close(s.probeDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-t.C:
			if s.health.State() == resilience.Healthy {
				continue
			}
			s.probeAttempts.Add(1)
			rec := &runtime.JournalRecord{Op: runtime.RecProbe, Instance: "gelee:probe"}
			if err := s.journal.Record(rec); err != nil {
				s.probeFailures.Add(1)
			}
		}
	}
}

// AdmitMutation is the resilience gate in front of every mutating
// entry point: resilience.ErrReadOnly while journal persistence is
// failing, a resilience.ShedError while the commit backlog is over the
// admission watermark, nil otherwise.
func (s *System) AdmitMutation() error { return s.gate.AdmitMutation() }

// Health returns the current health state (healthy, degraded or
// read-only).
func (s *System) Health() resilience.State { return s.health.State() }

// HealthReport aggregates the resilience layer's state and counters:
// health machine, admission gate, circuit breakers, probes and alerts.
// The payload of GET /api/v1/admin/health.
func (s *System) HealthReport() resilience.Report {
	rep := resilience.Report{
		Health:           s.health.Report(),
		Admission:        s.gate.Admission.Stats(),
		ReadOnlyRejected: s.gate.ReadOnlyRejected(),
		Probes: resilience.ProbeStats{
			Attempts: s.probeAttempts.Load(),
			Failures: s.probeFailures.Load(),
		},
		Alerts: s.watcher.Stats(),
	}
	rep.State = rep.Health.State
	if s.breakers != nil {
		rep.Breakers = s.breakers.Stats()
		rep.BreakerOpens = s.breakers.Opens()
		rep.BreakerRejected = s.breakers.Rejected()
	}
	// Journal integrity, summed across the definitions store and the
	// instance collection, for deployments with durable journals.
	st := s.StoreStats()
	if st.Engine.Integrity.Framing || st.Instances != nil && st.Instances.Integrity.Framing {
		ir := &resilience.IntegrityReport{
			Framing:         true,
			ReadOnlyLatched: rep.Health.Latched,
		}
		add := func(is store.IntegrityStats) {
			ir.CorruptFiles += is.CorruptFiles
			ir.QuarantinedFiles += is.QuarantinedFiles
			ir.TornTailsRecovered += is.TornTails
			ir.ScrubPasses += is.ScrubPasses
			if is.LastScrubUnix > ir.LastScrubUnix {
				ir.LastScrubUnix = is.LastScrubUnix
			}
			if is.LastError != "" {
				ir.LastError = is.LastError
			}
		}
		add(st.Engine.Integrity)
		if st.Instances != nil {
			add(st.Instances.Integrity)
		}
		rep.Integrity = ir
	}
	return rep
}

// RecentAlerts returns up to limit of the newest threshold alerts,
// newest last.
func (s *System) RecentAlerts(limit int) []resilience.Alert { return s.watcher.Recent(limit) }

// SubscribeAlerts subscribes to the live alert feed; the returned
// cancel must be called when done.
func (s *System) SubscribeAlerts(buf int) (<-chan resilience.Alert, func()) {
	return s.watcher.Feed().Subscribe(buf)
}

// logEvent mirrors every runtime event into the persistent execution
// log (Fig. 2 data tier). Data carries the full typed event, which is
// what lets the timeline backfill ring-truncated history from the log;
// Kind/Actor/Detail stay as the human-readable audit columns. The
// event is encoded with the runtime's codec — this runs synchronously
// on every mutation, where a reflection marshal would cost more than
// the mutation itself.
func (s *System) logEvent(instID string, ev runtime.Event) {
	data := ev.AppendJSON(nil)
	_, _ = s.execLog.Append(store.LogEntry{
		Time:     ev.Time,
		Instance: instID,
		Kind:     string(ev.Kind),
		Actor:    ev.Actor,
		Detail:   eventDetail(ev),
		Data:     data,
	})
}

func eventDetail(ev runtime.Event) string {
	d := ev.Detail
	if ev.Phase != "" {
		d = "[" + ev.Phase + "] " + d
	}
	if ev.Deviation {
		d += " (deviation)"
	}
	if ev.Status != "" {
		d += " status=" + ev.Status
	}
	return d
}

// Close flushes and closes the data tier, the instance journal
// included. Every mutation acknowledged before Close is durable.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		s.watcher.Close()
		if s.probeStop != nil {
			close(s.probeStop)
			<-s.probeDone
		}
	})
	s.Runtime.WaitDispatch()
	err := s.store.Close()
	if s.instances != nil {
		if ierr := s.instances.Close(); err == nil {
			err = ierr
		}
	}
	return err
}

// Compact compacts the data tier without stopping writers: each
// journal's active segment is sealed and every sealed segment is
// folded into a snapshot — the definitions journal from the live
// repository state, the instance journal from per-instance RecSnapshot
// images — after which restart replay reads only the snapshots plus
// whatever has been appended since. Mutations proceed for the whole
// duration.
func (s *System) Compact() error {
	if err := s.store.Compact(); err != nil {
		return err
	}
	if s.instances != nil {
		return s.instances.Compact()
	}
	return nil
}

// StoreStats reports data-tier health: engine state and throughput
// counters plus per-repository sizes, and — when instances are
// persisted — the instance journal's own engine counters. The payload
// of the admin API's GET /api/v1/admin/store.
func (s *System) StoreStats() store.Stats {
	st := s.store.Stats()
	if s.instances != nil {
		es := s.instances.Stats()
		st.Instances = &es
	}
	return st
}

// RuntimeStats reports runtime health: instance-shard occupancy and
// secondary-index sizes — the payload of the admin API's
// GET /api/v1/admin/runtime.
func (s *System) RuntimeStats() runtime.Stats { return s.Runtime.RuntimeStats() }

// Monitor returns the cockpit query engine.
func (s *System) Monitor() *monitor.Monitor { return s.mon }

// Widgets returns the widget renderer.
func (s *System) Widgets() *widget.Renderer { return s.wdgt }

// ExecutionLog returns the persistent event log.
func (s *System) ExecutionLog() *store.Log { return s.execLog }

// ExecutionLogPage returns up to limit execution-log entries with
// Seq > after in append order — the cockpit's cursor over unbounded
// history. Archived cold history streams from disk lazily; archives
// entirely below the cursor are skipped without touching them.
func (s *System) ExecutionLogPage(after uint64, limit int) ([]store.LogEntry, error) {
	return s.execLog.Page(after, limit)
}

// ExecutionLogLen reports the number of entries ever appended to the
// execution log, archived cold history included.
func (s *System) ExecutionLogLen() int { return s.execLog.Len() }

// ErrForbidden is returned when Auth is enabled and the actor lacks the
// required role.
var ErrForbidden = runtime.ErrForbidden

func (s *System) canDesign(actor, modelURI string) bool {
	if !s.opts.Auth {
		return true
	}
	return s.ACL.CanDesign(actor, modelURI)
}

// ---- design time -------------------------------------------------------------

// DefineModel validates and stores a lifecycle model. With Auth on, the
// actor needs the lifecycle-manager role on the model URI — except for
// a brand-new URI, whose definer is granted that role automatically.
func (s *System) DefineModel(actor string, m *core.Model) error {
	if m == nil {
		return errors.New("gelee: nil model")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	_, exists := s.models.Get(m.URI)
	if exists && !s.canDesign(actor, m.URI) {
		return fmt.Errorf("%w: %s may not redefine %s", ErrForbidden, actor, m.URI)
	}
	if err := s.models.Put(m.URI, m.Clone()); err != nil {
		return err
	}
	if !exists && s.opts.Auth && actor != "" {
		if _, ok := s.ACL.User(actor); ok {
			if err := s.AddGrant(access.Grant{User: actor, Role: access.RoleLifecycleManager, Scope: m.URI}); err != nil {
				return err
			}
		}
	}
	_, _ = s.execLog.Append(store.LogEntry{Kind: "model-defined", Actor: actor, Detail: m.URI})
	return nil
}

// Model returns the stored model under uri (a private clone).
func (s *System) Model(uri string) (*core.Model, bool) {
	m, ok := s.models.Get(uri)
	if !ok {
		return nil, false
	}
	return m.Clone(), true
}

// ReadCacheEntriesPerShard reports the resolved per-shard read-cache
// bound (<= 0 means the cache is disabled) — startup logs and
// diagnostics read it.
func (s *System) ReadCacheEntriesPerShard() int { return s.readCacheEntries }

// ModelView returns the stored model under uri as a shared read-only
// view: the value is served from the per-shard read cache when hot, so
// repeated fetches of a popular model skip the defensive deep clone
// entirely. Callers MUST NOT mutate the result — use Model for a
// private copy.
func (s *System) ModelView(uri string) (*core.Model, bool) {
	return s.models.GetShared(uri)
}

// Models lists every stored model.
func (s *System) Models() []*core.Model {
	list := s.models.List()
	out := make([]*core.Model, len(list))
	for i, m := range list {
		out[i] = m.Clone()
	}
	return out
}

// SaveTemplate stores a reusable lifecycle template (Fig. 2 "Lifecycle
// templates" repository). Templates are models that are copied, renamed
// and customized per artifact (§II.B.2).
func (s *System) SaveTemplate(actor string, m *core.Model) error {
	if m == nil {
		return errors.New("gelee: nil template")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if err := s.templates.Put(m.URI, m.Clone()); err != nil {
		return err
	}
	_, _ = s.execLog.Append(store.LogEntry{Kind: "template-saved", Actor: actor, Detail: m.URI})
	return nil
}

// Template returns the template stored under uri.
func (s *System) Template(uri string) (*core.Model, bool) {
	m, ok := s.templates.Get(uri)
	if !ok {
		return nil, false
	}
	return m.Clone(), true
}

// TemplateView returns the template under uri as a shared read-only
// view served from the read cache (see ModelView). Callers MUST NOT
// mutate the result — use Template for a private copy.
func (s *System) TemplateView(uri string) (*core.Model, bool) {
	return s.templates.GetShared(uri)
}

// Templates lists every template.
func (s *System) Templates() []*core.Model {
	list := s.templates.List()
	out := make([]*core.Model, len(list))
	for i, m := range list {
		out[i] = m.Clone()
	}
	return out
}

// RegisterAction registers an action type with optional implementations
// and persists both (Fig. 2 "Resource and action definition"
// repository).
func (s *System) RegisterAction(actor string, at actionlib.ActionType, impls ...actionlib.Implementation) error {
	if err := s.Registry.ReplaceType(at); err != nil {
		return err
	}
	if err := s.actTypes.Put(at.URI, at); err != nil {
		return err
	}
	for _, im := range impls {
		if im.TypeURI == "" {
			im.TypeURI = at.URI
		}
		if err := s.Registry.RegisterImplementation(im); err != nil && !errors.Is(err, actionlib.ErrDuplicate) {
			return err
		}
		if err := s.actImpls.Put(im.TypeURI+"|"+im.ResourceType, im); err != nil {
			return err
		}
	}
	_, _ = s.execLog.Append(store.LogEntry{Kind: "action-registered", Actor: actor, Detail: at.URI})
	return nil
}

// ActionTypes returns the browsable action library: all types when
// resourceType is empty (design-time browse, Fig. 3), otherwise only
// the types implemented for that resource type (run-time browse).
func (s *System) ActionTypes(resourceType string) []actionlib.ActionType {
	if resourceType == "" {
		return s.Registry.Types()
	}
	return s.Registry.TypesFor(resourceType)
}

// AddUser registers an account and persists it.
func (s *System) AddUser(u access.User) error {
	if err := s.ACL.AddUser(u); err != nil {
		return err
	}
	return s.users.Put(u.Name, u)
}

// AddGrant assigns a role and persists it.
func (s *System) AddGrant(g access.Grant) error {
	if err := s.ACL.Grant(g); err != nil {
		return err
	}
	return s.grants.Put(fmt.Sprintf("%s|%s|%s", g.Scope, g.User, g.Role), g)
}

// ---- run time ------------------------------------------------------------------

// Instantiate creates a lifecycle instance of the stored model on ref,
// owned by owner (who receives the instance-owner role when Auth is
// enabled).
func (s *System) Instantiate(modelURI string, ref resource.Ref, owner string, bindings map[string]map[string]string) (runtime.Snapshot, error) {
	m, ok := s.models.Get(modelURI)
	if !ok {
		return runtime.Snapshot{}, fmt.Errorf("gelee: no model %q", modelURI)
	}
	if err := s.Resources.Check(ref); err != nil {
		return runtime.Snapshot{}, err
	}
	snap, err := s.Runtime.Instantiate(m, ref, owner, bindings)
	if err != nil {
		return runtime.Snapshot{}, err
	}
	if s.opts.Auth && owner != "" {
		if _, ok := s.ACL.User(owner); ok {
			if err := s.AddGrant(access.Grant{User: owner, Role: access.RoleInstanceOwner, Scope: snap.ID}); err != nil {
				return runtime.Snapshot{}, err
			}
		}
	}
	return snap, nil
}

// Advance moves the token and returns a full history snapshot (see
// runtime.Runtime.Advance). The HTTP tier and other hot callers prefer
// AdvanceSummary.
func (s *System) Advance(instID, toPhase, actor string, opts runtime.AdvanceOptions) (runtime.Snapshot, error) {
	return s.Runtime.Advance(instID, toPhase, actor, opts)
}

// AdvanceSummary moves the token in the copy-free result mode: the
// post-move summary plus only the events this move appended.
func (s *System) AdvanceSummary(instID, toPhase, actor string, opts runtime.AdvanceOptions) (runtime.MoveResult, error) {
	return s.Runtime.AdvanceSummary(instID, toPhase, actor, opts)
}

// Annotate attaches a note to the instance history.
func (s *System) Annotate(instID, actor, note string) error {
	return s.Runtime.Annotate(instID, actor, note)
}

// BindParams supplies instantiation-stage parameter values.
func (s *System) BindParams(instID, actor, actionURI string, values map[string]string) error {
	return s.Runtime.BindParams(instID, actor, actionURI, values)
}

// Instance returns a snapshot — a full deep copy of the instance's
// history. For status polls prefer InstanceSummary.
func (s *System) Instance(id string) (runtime.Snapshot, bool) { return s.Runtime.Instance(id) }

// InstanceSummary returns the copy-free projection of one instance —
// the path behind SOAP getInstance and status polls.
func (s *System) InstanceSummary(id string) (runtime.Summary, bool) { return s.Runtime.Summary(id) }

// Events returns a page of one instance's history (Seq > after, at
// most limit events; limit <= 0 means unbounded) — the path behind
// GET /api/v1/instances/{id}/timeline. When ring truncation has
// dropped part of the requested range from memory, the missing prefix
// is read back from the journaled execution log and stitched in front
// of the retained window, so the full record stays addressable; the
// page's Backfilled count says how much came from the log.
func (s *System) Events(id string, after, limit int) (runtime.EventPage, bool) {
	page, ok := s.Runtime.Events(id, after, limit)
	if !ok || !page.Truncated {
		return page, ok
	}
	old := s.backfillEvents(id, after+1, page.OldestSeq-1)
	if len(old) == 0 {
		return page, ok
	}
	merged := append(old, page.Events...)
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	backfilled := len(old)
	if backfilled > len(merged) {
		backfilled = len(merged)
	}
	page.Events = merged
	page.Backfilled = backfilled
	// Still truncated only if the log itself was missing the head of
	// the requested range (entries from before events were mirrored).
	page.Truncated = merged[0].Seq != after+1
	return page, true
}

// backfillEvents reads the typed events mirrored into the execution
// log for one instance, keeping seqs in [from, to], in seq order.
// Entries without a typed mirror (written before the mirror existed)
// are skipped. The scan streams the instance's log entries in append
// order and stops as soon as the range is fully collected, so a page
// read costs O(events before the page's end), not O(total history);
// only when mirrors are missing does it scan to the log's tail.
func (s *System) backfillEvents(id string, from, to int) []runtime.Event {
	if from > to {
		return nil
	}
	want := to - from + 1
	out := make([]runtime.Event, 0, want)
	s.execLog.ScanInstance(id, func(le store.LogEntry) bool {
		if len(le.Data) == 0 {
			return true
		}
		var ev runtime.Event
		if err := json.Unmarshal(le.Data, &ev); err != nil || ev.Seq == 0 {
			return true
		}
		if ev.Seq >= from && ev.Seq <= to {
			out = append(out, ev)
		}
		return len(out) < want
	})
	// The log is appended outside the instance lock, so near-ties can
	// land out of order; seqs are authoritative.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// PhaseStats returns one instance's per-phase entered counts and
// residence times, maintained incrementally and truncation-proof.
func (s *System) PhaseStats(id string, now time.Time) (map[string]runtime.PhaseStat, bool) {
	return s.Runtime.PhaseStats(id, now)
}

// Instances lists every instance with full histories. For list views
// over large populations prefer Summaries.
func (s *System) Instances() []runtime.Snapshot { return s.Runtime.Instances() }

// InstanceCount reports the live instance population without copying
// any instance state.
func (s *System) InstanceCount() int { return s.Runtime.Count() }

// Summaries lists every instance without copying event histories — the
// cheap path behind GET /api/v1/instances and the cockpit.
func (s *System) Summaries() []runtime.Summary { return s.Runtime.Summaries() }

// SummariesPage returns one cursor window of the population summary
// view (creation seq > after, at most limit) — the paged mode of
// GET /api/v1/instances — served from the runtime's incrementally
// maintained population index in O(log N + page).
func (s *System) SummariesPage(after int64, limit int) runtime.SummaryPage {
	return s.Runtime.SummariesPage(after, limit)
}

// QuerySummaries returns one cursor window of the summaries matching
// the filter — the filtered mode of GET /api/v1/instances. Resource
// and model predicates are served from the runtime's secondary URI
// indexes, state/lateness from the maintained summary counters; see
// runtime.Runtime.QuerySummaries for the Total semantics of filtered
// pages.
func (s *System) QuerySummaries(f runtime.Filter, after int64, limit int) runtime.SummaryPage {
	return s.Runtime.QuerySummaries(f, after, limit)
}

// ForEachSummary streams the summaries matching the filter in creation
// order, without materializing the population — the monitor.Source
// seam the cockpit rebuild runs on.
func (s *System) ForEachSummary(f runtime.Filter, after int64, fn func(runtime.Summary) bool) {
	s.Runtime.ForEachSummary(f, after, fn)
}

// SummariesPageScan is the pre-index O(N log N) full-scan page.
//
// Deprecated: it exists only as the A/B baseline for the openloop
// benchmark and goes away next release; use SummariesPage.
func (s *System) SummariesPageScan(after int64, limit int) runtime.SummaryPage {
	return s.Runtime.SummariesPageScan(after, limit)
}

// RecoveryStats reports what the startup instance-journal replay
// rebuilt; zeros when PersistInstances is off or the journal was
// empty.
func (s *System) RecoveryStats() runtime.RecoveryStats {
	return s.Runtime.RuntimeStats().Persistence.Recovered
}

// Report delivers an action status callback.
func (s *System) Report(up actionlib.StatusUpdate) error { return s.Runtime.Report(up) }

// Propagate saves the new model version and proposes it to every
// running instance created from the same URI; owners decide
// individually (§IV.B). It returns the number of instances notified.
func (s *System) Propagate(actor string, m *core.Model, note string) (int, error) {
	if m == nil {
		return 0, errors.New("gelee: nil model")
	}
	if !s.canDesign(actor, m.URI) {
		return 0, fmt.Errorf("%w: %s may not redesign %s", ErrForbidden, actor, m.URI)
	}
	if err := s.DefineModel(actor, m); err != nil {
		return 0, err
	}
	n := 0
	for _, snap := range s.Runtime.ByModelURI(m.URI) {
		if snap.State == runtime.StateCompleted {
			continue
		}
		if err := s.Runtime.ProposeChange(snap.ID, actor, m, note); err != nil {
			return n, err
		}
		n++
	}
	_, _ = s.execLog.Append(store.LogEntry{Kind: "model-propagated", Actor: actor,
		Detail: fmt.Sprintf("%s to %d instance(s)", m.URI, n)})
	return n, nil
}

// ProposeChange pushes a model change to one instance.
func (s *System) ProposeChange(instID, proposer string, m *core.Model, note string) error {
	return s.Runtime.ProposeChange(instID, proposer, m, note)
}

// AcceptChange applies a pending change (owner decision).
func (s *System) AcceptChange(instID, actor, landing string) (runtime.Snapshot, error) {
	return s.Runtime.AcceptChange(instID, actor, landing)
}

// AcceptChangeSummary applies a pending change in the copy-free result
// mode.
func (s *System) AcceptChangeSummary(instID, actor, landing string) (runtime.MoveResult, error) {
	return s.Runtime.AcceptChangeSummary(instID, actor, landing)
}

// RejectChange discards a pending change (owner decision).
func (s *System) RejectChange(instID, actor, note string) error {
	return s.Runtime.RejectChange(instID, actor, note)
}

// SwitchModel lets the instance owner change the lifecycle followed by
// the resource outright.
func (s *System) SwitchModel(instID, actor string, m *core.Model, landing string) (runtime.Snapshot, error) {
	return s.Runtime.SwitchModel(instID, actor, m, landing)
}

// SwitchModelSummary is SwitchModel in the copy-free result mode.
func (s *System) SwitchModelSummary(instID, actor string, m *core.Model, landing string) (runtime.MoveResult, error) {
	return s.Runtime.SwitchModelSummary(instID, actor, m, landing)
}
